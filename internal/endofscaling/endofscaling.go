// Package endofscaling implements the baseline dark-silicon methodology
// the paper critiques: the power-budget upper-bound model in the style of
// Esmaeilzadeh et al., "Dark silicon and the end of multicore scaling"
// (ISCA 2011) — reference [6] of the paper.
//
// The baseline models dark silicon purely as a chip-level power budget:
// a chip of area A_chip holds n_area = A_chip / A_core cores; a TDP of
// P_budget sustains n_power = P_budget / P_core(fmax) cores at the maximum
// voltage/frequency; everything beyond n_power is dark. Two of the
// paper's objections are visible directly in this model's structure:
//
//   - it runs every powered core at the maximum v/f level (no DVFS), and
//   - it never consults temperature, so it cannot see either the thermal
//     violations an optimistic budget hides or the headroom a pessimistic
//     budget wastes.
//
// It also provides the ISCA'11-style symmetric-multicore speedup bound
// (Amdahl over the powered cores, Pollack's rule for single-core
// performance vs area) used to reproduce the "end of multicore scaling"
// projection the paper argues is over-pessimistic.
package endofscaling

import (
	"errors"
	"fmt"
	"math"

	"darksim/internal/amdahl"
	"darksim/internal/apps"
	"darksim/internal/tech"
)

// ErrModel is returned for invalid model inputs.
var ErrModel = errors.New("endofscaling: invalid")

// ChipBudget describes the fixed chip envelope the ISCA'11 analysis
// scales designs into.
type ChipBudget struct {
	// AreaMM2 is the chip's core-array area budget in mm².
	AreaMM2 float64
	// TDPW is the chip power budget in watts.
	TDPW float64
}

// Estimate is the baseline model's output for one node.
type Estimate struct {
	Node tech.Node
	// AreaCores is how many cores fit in the area budget.
	AreaCores int
	// PowerCores is how many cores the TDP sustains at fmax.
	PowerCores int
	// ActiveCores = min(AreaCores, PowerCores).
	ActiveCores int
	// DarkFraction = 1 − ActiveCores/AreaCores.
	DarkFraction float64
	// FmaxGHz is the (only) operating point the baseline considers.
	FmaxGHz float64
	// CorePowerW is the per-core Equation (1) power at fmax.
	CorePowerW float64
}

// DarkSilicon evaluates the power-budget model for an application at a
// node: cores run the app at the node's maximum nominal v/f, the budget
// is evaluated at the given temperature (the baseline has no thermal
// model, so this is the fixed junction temperature assumption — 80 °C in
// the paper's comparisons).
func DarkSilicon(node tech.Node, app apps.App, budget ChipBudget, tempC float64) (Estimate, error) {
	if budget.AreaMM2 <= 0 || budget.TDPW <= 0 {
		return Estimate{}, fmt.Errorf("%w: budget %+v", ErrModel, budget)
	}
	spec, err := tech.SpecFor(node)
	if err != nil {
		return Estimate{}, err
	}
	corePower, err := app.CorePower(node, spec.FmaxGHz, tempC)
	if err != nil {
		return Estimate{}, err
	}
	areaCores := int(budget.AreaMM2 / spec.CoreAreaMM2)
	if areaCores < 1 {
		return Estimate{}, fmt.Errorf("%w: area budget %.1f mm² below one %.1f mm² core",
			ErrModel, budget.AreaMM2, spec.CoreAreaMM2)
	}
	powerCores := int(budget.TDPW / corePower)
	active := powerCores
	if active > areaCores {
		active = areaCores
	}
	if active < 0 {
		active = 0
	}
	return Estimate{
		Node:         node,
		AreaCores:    areaCores,
		PowerCores:   powerCores,
		ActiveCores:  active,
		DarkFraction: 1 - float64(active)/float64(areaCores),
		FmaxGHz:      spec.FmaxGHz,
		CorePowerW:   corePower,
	}, nil
}

// PollackExponent is Pollack's rule: single-core performance grows with
// the square root of core area (resources).
const PollackExponent = 0.5

// SpeedupBound returns the ISCA'11-style symmetric-multicore speedup of
// the estimate over a reference single core of the 22 nm generation,
// assuming Amdahl scaling with the given parallel fraction across the
// powered cores and frequency scaling from the node factors:
//
//	serial perf  = (f_node/f_22) · (A_core,node/A_core,22)^PollackExponent
//	speedup      = 1 / ((1−p)/serial + p/(n·serial))
//
// (All cores are identical, so the serial and parallel per-core
// performances coincide; the bound reduces to serial · Amdahl(n).)
func (e Estimate) SpeedupBound(parallelFrac float64) (float64, error) {
	law, err := amdahl.NewAmdahl(parallelFrac)
	if err != nil {
		return 0, err
	}
	factors, err := tech.FactorsFor(e.Node)
	if err != nil {
		return 0, err
	}
	serial := factors.Frequency * math.Pow(factors.Area, PollackExponent)
	if e.ActiveCores == 0 {
		return 0, nil
	}
	return serial * law.Speedup(e.ActiveCores), nil
}

// Sweep evaluates the model across all nodes for one application and
// budget, the trend table of the ISCA'11 projection.
func Sweep(app apps.App, budget ChipBudget, tempC float64) ([]Estimate, error) {
	var out []Estimate
	for _, node := range tech.Nodes() {
		e, err := DarkSilicon(node, app, budget, tempC)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
