// Package tsp implements Thermal Safe Power (Pagani et al.,
// CODES+ISSS 2014), the power-budget abstraction §5 of the paper builds
// on: for a given number of active cores, TSP is the maximum per-core
// power such that the steady-state temperature of every core stays below
// the critical threshold, no matter (worst case) or given (mapping-aware)
// where the active cores sit.
//
// The computation exploits the linearity of the RC thermal model. With
// influence matrix B (B[i][j] = °C rise at core i per watt in core j) and
// ambient field T0, a uniform per-core power p over an active set S yields
//
//	T_i = T0_i + p · Σ_{j∈S} B[i][j]
//
// so the largest safe p is
//
//	TSP(S) = min_i (Tcrit − T0_i) / Σ_{j∈S} B[i][j]
//
// minimized over all cores i (inactive cores cannot exceed the threshold
// if active ones do not, but the formula covers them anyway). The
// worst-case TSP for n cores minimizes TSP(S) over all |S| = n, which is
// attained by the most thermally clustered mapping; this package uses a
// greedy densest-cluster heuristic, which is exact on homogeneous grids
// for practical purposes.
package tsp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"darksim/internal/thermal"
)

// ErrInfeasible is returned when no positive power budget exists (the
// ambient field already violates the threshold).
var ErrInfeasible = errors.New("tsp: thermal threshold infeasible")

// Calculator computes TSP values against one thermal model and critical
// temperature.
type Calculator struct {
	model *thermal.Model
	tcrit float64
	base  []float64 // ambient field per block
}

// New creates a Calculator for the model and critical temperature (°C).
func New(model *thermal.Model, tcritC float64) (*Calculator, error) {
	if model == nil {
		return nil, errors.New("tsp: nil thermal model")
	}
	base := model.AmbientField()
	for i, b := range base {
		if b >= tcritC {
			return nil, fmt.Errorf("%w: core %d idles at %.2f °C ≥ %.2f °C", ErrInfeasible, i, b, tcritC)
		}
	}
	return &Calculator{model: model, tcrit: tcritC, base: base}, nil
}

// Tcrit returns the configured critical temperature.
func (c *Calculator) Tcrit() float64 { return c.tcrit }

// Given returns TSP for a specific active-core set: the maximum uniform
// per-core power (W) keeping every core below Tcrit. The context bounds
// the (cached, usually already computed) influence-matrix build.
func (c *Calculator) Given(ctx context.Context, active []int) (float64, error) {
	if len(active) == 0 {
		return 0, errors.New("tsp: empty active set")
	}
	n := c.model.NumBlocks()
	seen := make(map[int]bool, len(active))
	for _, a := range active {
		if a < 0 || a >= n {
			return 0, fmt.Errorf("tsp: core index %d out of range [0,%d)", a, n)
		}
		if seen[a] {
			return 0, fmt.Errorf("tsp: duplicate core index %d", a)
		}
		seen[a] = true
	}
	inf, err := c.model.InfluenceMatrix(ctx)
	if err != nil {
		return 0, err
	}
	rowSum := make([]float64, n)
	for i := 0; i < n; i++ {
		for _, j := range active {
			rowSum[i] += inf.At(i, j)
		}
	}
	return c.evalTSP(rowSum, len(active))
}

// evalTSP turns accumulated influence row sums Σ_{j∈S} B[i][j] into the
// TSP value min_i (Tcrit − T0_i) / rowSum[i]. It is shared between Given
// (which builds the sums for an arbitrary set) and the greedy worst-case
// walk (which maintains them incrementally); both accumulate each row in
// active-set order, so the two call sites produce bit-identical values
// for the same set.
func (c *Calculator) evalTSP(rowSum []float64, nActive int) (float64, error) {
	best := math.Inf(1)
	for i, rs := range rowSum {
		if rs <= 0 {
			continue
		}
		if p := (c.tcrit - c.base[i]) / rs; p < best {
			best = p
		}
	}
	if math.IsInf(best, 1) || best <= 0 {
		return 0, fmt.Errorf("%w: active set of %d cores", ErrInfeasible, nActive)
	}
	return best, nil
}

// worstWalk runs the greedy adversarial-placement walk up to n cores:
// start from the single core with the highest self-influence (the thermal
// centre) and repeatedly add the core that maximizes the accumulated
// influence at the current hottest spot. After every pick it invokes
// visit with the prefix length and the live rowSum slice (read-only, do
// not retain), which lets Table evaluate all prefixes from one walk. The
// greedy choice at step k only depends on the first k picks, so the
// n-core placement is a prefix of the (n+1)-core one — the property the
// single shared walk exploits. Returns the full placement sequence.
func (c *Calculator) worstWalk(ctx context.Context, n int, visit func(k int, rowSum []float64) error) ([]int, error) {
	nb := c.model.NumBlocks()
	if n <= 0 || n > nb {
		return nil, fmt.Errorf("tsp: core count %d out of range [1,%d]", n, nb)
	}
	inf, err := c.model.InfluenceMatrix(ctx)
	if err != nil {
		return nil, err
	}

	// Seed: the core with maximum self-influence.
	seed, best := 0, math.Inf(-1)
	for i := 0; i < nb; i++ {
		if v := inf.At(i, i); v > best {
			seed, best = i, v
		}
	}
	active := []int{seed}
	inSet := make([]bool, nb)
	inSet[seed] = true
	// rowSum[i] accumulates Σ_{j∈S} B[i][j] in pick order, matching the
	// accumulation order of Given for the same set.
	rowSum := make([]float64, nb)
	for i := 0; i < nb; i++ {
		rowSum[i] = inf.At(i, seed)
	}
	if err := visit(1, rowSum); err != nil {
		return nil, err
	}
	for len(active) < n {
		// Current hottest candidate row (weighted by headroom).
		hot, worst := -1, math.Inf(-1)
		for i := 0; i < nb; i++ {
			if v := rowSum[i] / (c.tcrit - c.base[i]); v > worst {
				hot, worst = i, v
			}
		}
		// Add the core contributing most to the hottest row.
		pick, bestContrib := -1, math.Inf(-1)
		for j := 0; j < nb; j++ {
			if inSet[j] {
				continue
			}
			if v := inf.At(hot, j); v > bestContrib {
				pick, bestContrib = j, v
			}
		}
		if pick < 0 {
			break
		}
		inSet[pick] = true
		active = append(active, pick)
		for i := 0; i < nb; i++ {
			rowSum[i] += inf.At(i, pick)
		}
		if err := visit(len(active), rowSum); err != nil {
			return nil, err
		}
	}
	return active, nil
}

// WorstCase returns the worst-case TSP for n active cores — the TSP of
// the most thermally adverse placement, found by the greedy worstWalk —
// together with the adversarial placement itself.
func (c *Calculator) WorstCase(ctx context.Context, n int) (float64, []int, error) {
	var p float64
	active, err := c.worstWalk(ctx, n, func(k int, rowSum []float64) error {
		if k < n {
			return nil
		}
		v, err := c.evalTSP(rowSum, k)
		if err != nil {
			return err
		}
		p = v
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	return p, active, nil
}

// BestCase returns the TSP of a thermally favourable placement for n
// cores, found greedily by always adding the core that keeps the maximum
// influence row sum lowest. This is the "dark silicon patterning" dual of
// WorstCase and upper-bounds the achievable uniform budget.
func (c *Calculator) BestCase(ctx context.Context, n int) (float64, []int, error) {
	nb := c.model.NumBlocks()
	if n <= 0 || n > nb {
		return 0, nil, fmt.Errorf("tsp: core count %d out of range [1,%d]", n, nb)
	}
	inf, err := c.model.InfluenceMatrix(ctx)
	if err != nil {
		return 0, nil, err
	}
	inSet := make([]bool, nb)
	rowSum := make([]float64, nb)
	var active []int
	for len(active) < n {
		pick, bestPeak := -1, math.Inf(1)
		for j := 0; j < nb; j++ {
			if inSet[j] {
				continue
			}
			// Peak normalized row sum if j were added.
			peak := math.Inf(-1)
			for i := 0; i < nb; i++ {
				if v := (rowSum[i] + inf.At(i, j)) / (c.tcrit - c.base[i]); v > peak {
					peak = v
				}
			}
			if peak < bestPeak {
				pick, bestPeak = j, peak
			}
		}
		inSet[pick] = true
		active = append(active, pick)
		for i := 0; i < nb; i++ {
			rowSum[i] += inf.At(i, pick)
		}
	}
	p, err := c.Given(ctx, active)
	if err != nil {
		return 0, nil, err
	}
	return p, active, nil
}

// TableEntry is one row of a TSP-versus-active-cores table.
type TableEntry struct {
	ActiveCores int
	PerCoreW    float64 // worst-case TSP per core
	TotalW      float64 // ActiveCores · PerCoreW
}

// Table computes the worst-case TSP for every core count in [1, max],
// the curve §5 describes ("as the number of active cores grows, the TSP
// values decrease"). Because the greedy placement for n cores is a prefix
// of the one for n+1, the whole table falls out of a single worstWalk:
// every prefix is evaluated from the incrementally maintained row sums,
// turning the former O(max) repeated walks (O(max²·cores²) influence
// accumulations) into one O(max·cores²) pass with values bit-identical
// to calling WorstCase per entry.
func (c *Calculator) Table(ctx context.Context, max int) ([]TableEntry, error) {
	if max <= 0 || max > c.model.NumBlocks() {
		return nil, fmt.Errorf("tsp: table size %d out of range", max)
	}
	out := make([]TableEntry, 0, max)
	_, err := c.worstWalk(ctx, max, func(k int, rowSum []float64) error {
		p, err := c.evalTSP(rowSum, k)
		if err != nil {
			return err
		}
		out = append(out, TableEntry{ActiveCores: k, PerCoreW: p, TotalW: p * float64(k)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
