// Package tsp implements Thermal Safe Power (Pagani et al.,
// CODES+ISSS 2014), the power-budget abstraction §5 of the paper builds
// on: for a given number of active cores, TSP is the maximum per-core
// power such that the steady-state temperature of every core stays below
// the critical threshold, no matter (worst case) or given (mapping-aware)
// where the active cores sit.
//
// The computation exploits the linearity of the RC thermal model. With
// influence matrix B (B[i][j] = °C rise at core i per watt in core j) and
// ambient field T0, a uniform per-core power p over an active set S yields
//
//	T_i = T0_i + p · Σ_{j∈S} B[i][j]
//
// so the largest safe p is
//
//	TSP(S) = min_i (Tcrit − T0_i) / Σ_{j∈S} B[i][j]
//
// minimized over all cores i (inactive cores cannot exceed the threshold
// if active ones do not, but the formula covers them anyway). The
// worst-case TSP for n cores minimizes TSP(S) over all |S| = n, which is
// attained by the most thermally clustered mapping; this package uses a
// greedy densest-cluster heuristic, which is exact on homogeneous grids
// for practical purposes.
package tsp

import (
	"errors"
	"fmt"
	"math"

	"darksim/internal/thermal"
)

// ErrInfeasible is returned when no positive power budget exists (the
// ambient field already violates the threshold).
var ErrInfeasible = errors.New("tsp: thermal threshold infeasible")

// Calculator computes TSP values against one thermal model and critical
// temperature.
type Calculator struct {
	model *thermal.Model
	tcrit float64
	base  []float64 // ambient field per block
}

// New creates a Calculator for the model and critical temperature (°C).
func New(model *thermal.Model, tcritC float64) (*Calculator, error) {
	if model == nil {
		return nil, errors.New("tsp: nil thermal model")
	}
	base := model.AmbientField()
	for i, b := range base {
		if b >= tcritC {
			return nil, fmt.Errorf("%w: core %d idles at %.2f °C ≥ %.2f °C", ErrInfeasible, i, b, tcritC)
		}
	}
	return &Calculator{model: model, tcrit: tcritC, base: base}, nil
}

// Tcrit returns the configured critical temperature.
func (c *Calculator) Tcrit() float64 { return c.tcrit }

// Given returns TSP for a specific active-core set: the maximum uniform
// per-core power (W) keeping every core below Tcrit.
func (c *Calculator) Given(active []int) (float64, error) {
	if len(active) == 0 {
		return 0, errors.New("tsp: empty active set")
	}
	n := c.model.NumBlocks()
	seen := make(map[int]bool, len(active))
	for _, a := range active {
		if a < 0 || a >= n {
			return 0, fmt.Errorf("tsp: core index %d out of range [0,%d)", a, n)
		}
		if seen[a] {
			return 0, fmt.Errorf("tsp: duplicate core index %d", a)
		}
		seen[a] = true
	}
	inf := c.model.InfluenceMatrix()
	best := math.Inf(1)
	for i := 0; i < n; i++ {
		var rowSum float64
		for _, j := range active {
			rowSum += inf.At(i, j)
		}
		if rowSum <= 0 {
			continue
		}
		if p := (c.tcrit - c.base[i]) / rowSum; p < best {
			best = p
		}
	}
	if math.IsInf(best, 1) || best <= 0 {
		return 0, fmt.Errorf("%w: active set of %d cores", ErrInfeasible, len(active))
	}
	return best, nil
}

// WorstCase returns the worst-case TSP for n active cores: the TSP of the
// most thermally adverse placement. The placement is found greedily: start
// from the single core with the highest self-influence (the thermal
// centre) and repeatedly add the core that maximizes the accumulated
// influence at the current hottest spot. It also returns the adversarial
// placement itself.
func (c *Calculator) WorstCase(n int) (float64, []int, error) {
	nb := c.model.NumBlocks()
	if n <= 0 || n > nb {
		return 0, nil, fmt.Errorf("tsp: core count %d out of range [1,%d]", n, nb)
	}
	inf := c.model.InfluenceMatrix()

	// Seed: the core with maximum self-influence.
	seed, best := 0, math.Inf(-1)
	for i := 0; i < nb; i++ {
		if v := inf.At(i, i); v > best {
			seed, best = i, v
		}
	}
	active := []int{seed}
	inSet := make([]bool, nb)
	inSet[seed] = true
	// rowSum[i] accumulates Σ_{j∈S} B[i][j].
	rowSum := make([]float64, nb)
	for i := 0; i < nb; i++ {
		rowSum[i] = inf.At(i, seed)
	}
	for len(active) < n {
		// Current hottest candidate row (weighted by headroom).
		hot, worst := -1, math.Inf(-1)
		for i := 0; i < nb; i++ {
			if v := rowSum[i] / (c.tcrit - c.base[i]); v > worst {
				hot, worst = i, v
			}
		}
		// Add the core contributing most to the hottest row.
		pick, bestContrib := -1, math.Inf(-1)
		for j := 0; j < nb; j++ {
			if inSet[j] {
				continue
			}
			if v := inf.At(hot, j); v > bestContrib {
				pick, bestContrib = j, v
			}
		}
		if pick < 0 {
			break
		}
		inSet[pick] = true
		active = append(active, pick)
		for i := 0; i < nb; i++ {
			rowSum[i] += inf.At(i, pick)
		}
	}
	p, err := c.Given(active)
	if err != nil {
		return 0, nil, err
	}
	return p, active, nil
}

// BestCase returns the TSP of a thermally favourable placement for n
// cores, found greedily by always adding the core that keeps the maximum
// influence row sum lowest. This is the "dark silicon patterning" dual of
// WorstCase and upper-bounds the achievable uniform budget.
func (c *Calculator) BestCase(n int) (float64, []int, error) {
	nb := c.model.NumBlocks()
	if n <= 0 || n > nb {
		return 0, nil, fmt.Errorf("tsp: core count %d out of range [1,%d]", n, nb)
	}
	inf := c.model.InfluenceMatrix()
	inSet := make([]bool, nb)
	rowSum := make([]float64, nb)
	var active []int
	for len(active) < n {
		pick, bestPeak := -1, math.Inf(1)
		for j := 0; j < nb; j++ {
			if inSet[j] {
				continue
			}
			// Peak normalized row sum if j were added.
			peak := math.Inf(-1)
			for i := 0; i < nb; i++ {
				if v := (rowSum[i] + inf.At(i, j)) / (c.tcrit - c.base[i]); v > peak {
					peak = v
				}
			}
			if peak < bestPeak {
				pick, bestPeak = j, peak
			}
		}
		inSet[pick] = true
		active = append(active, pick)
		for i := 0; i < nb; i++ {
			rowSum[i] += inf.At(i, pick)
		}
	}
	p, err := c.Given(active)
	if err != nil {
		return 0, nil, err
	}
	return p, active, nil
}

// TableEntry is one row of a TSP-versus-active-cores table.
type TableEntry struct {
	ActiveCores int
	PerCoreW    float64 // worst-case TSP per core
	TotalW      float64 // ActiveCores · PerCoreW
}

// Table computes the worst-case TSP for every core count in [1, max],
// the curve §5 describes ("as the number of active cores grows, the TSP
// values decrease").
func (c *Calculator) Table(max int) ([]TableEntry, error) {
	if max <= 0 || max > c.model.NumBlocks() {
		return nil, fmt.Errorf("tsp: table size %d out of range", max)
	}
	out := make([]TableEntry, 0, max)
	for n := 1; n <= max; n++ {
		p, _, err := c.WorstCase(n)
		if err != nil {
			return nil, err
		}
		out = append(out, TableEntry{ActiveCores: n, PerCoreW: p, TotalW: p * float64(n)})
	}
	return out, nil
}
