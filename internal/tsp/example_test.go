package tsp_test

import (
	"context"
	"fmt"
	"log"

	"darksim/internal/floorplan"
	"darksim/internal/thermal"
	"darksim/internal/tsp"
)

// Example shows the §5 TSP workflow: build the thermal model, then read
// off the worst-case safe per-core budget as a function of how many cores
// are active.
func Example() {
	fp, err := floorplan.NewGrid(10, 10, 5.1) // the 16 nm 100-core chip
	if err != nil {
		log.Fatal(err)
	}
	model, err := thermal.NewModel(fp, thermal.DefaultConfig(fp.DieW, fp.DieH, 10, 10))
	if err != nil {
		log.Fatal(err)
	}
	calc, err := tsp.New(model, 80) // TDTM = 80 °C
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []int{25, 50, 100} {
		budget, _, err := calc.WorstCase(context.Background(), n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("TSP(%3d cores) = %.2f W/core\n", n, budget)
	}
	// Output:
	// TSP( 25 cores) = 5.58 W/core
	// TSP( 50 cores) = 3.77 W/core
	// TSP(100 cores) = 2.38 W/core
}
