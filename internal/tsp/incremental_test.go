package tsp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// TestIncrementalMatchesGiven drives the updater through adds, removes
// and set replacements, checking the maintained TSP against a fresh
// Given evaluation of the same set after every mutation. Row sums only
// differ from Given's by accumulation order, so agreement is to a few
// ULPs, asserted here at 1e-12 relative.
func TestIncrementalMatchesGiven(t *testing.T) {
	m := model100(t)
	c, err := New(m, 80)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	u, err := c.Incremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.TSP(); err == nil {
		t.Errorf("empty set should error")
	}

	rng := rand.New(rand.NewSource(11))
	inSet := make(map[int]bool)
	check := func(op string) {
		t.Helper()
		active := u.Active()
		if len(active) != len(inSet) {
			t.Fatalf("%s: updater tracks %d cores, test tracks %d", op, len(active), len(inSet))
		}
		got, err := u.TSP()
		if err != nil {
			t.Fatalf("%s: incremental TSP: %v", op, err)
		}
		want, err := c.Given(ctx, active)
		if err != nil {
			t.Fatalf("%s: Given: %v", op, err)
		}
		if math.Abs(got-want) > 1e-12*want {
			t.Fatalf("%s: incremental %v vs Given %v", op, got, want)
		}
	}

	// 60 random adds interleaved with 20 removes.
	for i := 0; i < 80; i++ {
		if i%4 == 3 && len(inSet) > 0 {
			var cores []int
			for c := range inSet {
				cores = append(cores, c)
			}
			victim := cores[rng.Intn(len(cores))]
			if err := u.Remove(victim); err != nil {
				t.Fatal(err)
			}
			delete(inSet, victim)
			if len(inSet) == 0 {
				continue
			}
			check("remove")
			continue
		}
		core := rng.Intn(100)
		if inSet[core] {
			if err := u.Add(core); err == nil {
				t.Fatalf("double add of %d succeeded", core)
			}
			continue
		}
		if err := u.Add(core); err != nil {
			t.Fatal(err)
		}
		inSet[core] = true
		check("add")
	}

	// SetActive diffs against the current set.
	next := []int{3, 14, 15, 92, 65, 35}
	if err := u.SetActive(next); err != nil {
		t.Fatal(err)
	}
	inSet = map[int]bool{3: true, 14: true, 15: true, 92: true, 65: true, 35: true}
	check("setactive")
	// Idempotent: same set again is a no-op and still correct.
	if err := u.SetActive(next); err != nil {
		t.Fatal(err)
	}
	check("setactive-again")
}

// TestIncrementalAddOnlyBitIdentical pins the strongest form of the
// invariant: when cores were only ever added, in order, the row sums are
// accumulated exactly like Given's and the TSP values are bit-identical.
func TestIncrementalAddOnlyBitIdentical(t *testing.T) {
	m := model100(t)
	c, err := New(m, 80)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	u, err := c.Incremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	active := []int{55, 44, 45, 54, 46, 64, 37}
	for k, core := range active {
		if err := u.Add(core); err != nil {
			t.Fatal(err)
		}
		got, err := u.TSP()
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.Given(ctx, active[:k+1])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("after %d adds: incremental %v != Given %v", k+1, got, want)
		}
	}
}

func TestIncrementalErrors(t *testing.T) {
	m := model100(t)
	c, err := New(m, 80)
	if err != nil {
		t.Fatal(err)
	}
	u, err := c.Incremental(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Add(-1); err == nil {
		t.Errorf("negative core should error")
	}
	if err := u.Add(100); err == nil {
		t.Errorf("out-of-range core should error")
	}
	if err := u.Remove(5); err == nil {
		t.Errorf("removing an inactive core should error")
	}
	if err := u.SetActive([]int{1, 1}); err == nil {
		t.Errorf("duplicate cores should error")
	}
	if err := u.SetActive([]int{200}); err == nil {
		t.Errorf("out-of-range set should error")
	}
	// Errors must leave the set untouched.
	if err := u.SetActive([]int{7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := u.SetActive([]int{7, 8, 300}); err == nil {
		t.Errorf("partially invalid set should error")
	}
	got := u.Active()
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Errorf("failed SetActive mutated the set: %v", got)
	}
}
