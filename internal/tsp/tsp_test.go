package tsp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"darksim/internal/floorplan"
	"darksim/internal/thermal"
)

func model100(t testing.TB) *thermal.Model {
	t.Helper()
	fp, err := floorplan.NewGrid(10, 10, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := thermal.NewModel(fp, thermal.DefaultConfig(fp.DieW, fp.DieH, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, 80); err == nil {
		t.Errorf("nil model should error")
	}
	m := model100(t)
	if _, err := New(m, 30); err == nil {
		t.Errorf("threshold below ambient should be infeasible")
	}
}

func TestGivenSafety(t *testing.T) {
	m := model100(t)
	c, err := New(m, 80)
	if err != nil {
		t.Fatal(err)
	}
	// A contiguous 5x5 cluster.
	fp := m.Floorplan()
	var active []int
	for r := 0; r < 5; r++ {
		for col := 0; col < 5; col++ {
			active = append(active, fp.Index(r, col))
		}
	}
	p, err := c.Given(context.Background(), active)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 {
		t.Fatalf("TSP = %v", p)
	}
	// Running the set exactly at TSP must not violate the threshold;
	// running 5% above must violate it.
	pw := make([]float64, 100)
	for _, a := range active {
		pw[a] = p
	}
	peak, _, err := m.PeakSteadyState(pw)
	if err != nil {
		t.Fatal(err)
	}
	if peak > 80+1e-6 {
		t.Errorf("peak at TSP = %.4f °C exceeds threshold", peak)
	}
	if peak < 79.99 {
		t.Errorf("TSP should be tight: peak = %.4f °C", peak)
	}
	for _, a := range active {
		pw[a] = p * 1.05
	}
	peak, _, err = m.PeakSteadyState(pw)
	if err != nil {
		t.Fatal(err)
	}
	if peak <= 80 {
		t.Errorf("5%% over TSP should violate: peak = %.4f °C", peak)
	}
}

func TestGivenErrors(t *testing.T) {
	m := model100(t)
	c, err := New(m, 80)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Given(context.Background(), nil); err == nil {
		t.Errorf("empty set should error")
	}
	if _, err := c.Given(context.Background(), []int{-1}); err == nil {
		t.Errorf("negative index should error")
	}
	if _, err := c.Given(context.Background(), []int{100}); err == nil {
		t.Errorf("out-of-range index should error")
	}
	if _, err := c.Given(context.Background(), []int{3, 3}); err == nil {
		t.Errorf("duplicate index should error")
	}
}

func TestWorstCaseDecreasesWithCores(t *testing.T) {
	// §5: "As the number of active cores grows, the TSP values decrease."
	m := model100(t)
	c, err := New(m, 80)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, n := range []int{1, 4, 16, 36, 64, 100} {
		p, placement, err := c.WorstCase(context.Background(), n)
		if err != nil {
			t.Fatal(err)
		}
		if len(placement) != n {
			t.Fatalf("placement size %d, want %d", len(placement), n)
		}
		if p >= prev {
			t.Errorf("TSP(%d) = %.3f not below TSP of fewer cores %.3f", n, p, prev)
		}
		prev = p
	}
}

func TestWorstCaseBelowGivenSpreadMapping(t *testing.T) {
	// The worst-case budget must be ≤ the budget of a deliberately
	// spread mapping of the same size.
	m := model100(t)
	c, err := New(m, 80)
	if err != nil {
		t.Fatal(err)
	}
	worst, _, err := c.WorstCase(context.Background(), 25)
	if err != nil {
		t.Fatal(err)
	}
	fp := m.Floorplan()
	var spread []int
	for r := 0; r < 10; r += 2 {
		for col := 0; col < 10; col += 2 {
			spread = append(spread, fp.Index(r, col))
		}
	}
	given, err := c.Given(context.Background(), spread)
	if err != nil {
		t.Fatal(err)
	}
	if worst > given+1e-9 {
		t.Errorf("worst-case TSP %.3f exceeds spread-mapping TSP %.3f", worst, given)
	}
}

func TestBestCaseAboveWorstCase(t *testing.T) {
	m := model100(t)
	c, err := New(m, 80)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{10, 40, 70} {
		worst, _, err := c.WorstCase(context.Background(), n)
		if err != nil {
			t.Fatal(err)
		}
		best, placement, err := c.BestCase(context.Background(), n)
		if err != nil {
			t.Fatal(err)
		}
		if len(placement) != n {
			t.Fatalf("best placement size %d", len(placement))
		}
		if best < worst-1e-9 {
			t.Errorf("n=%d: best-case TSP %.3f below worst-case %.3f", n, best, worst)
		}
	}
	// At n == all cores the two coincide (no placement freedom).
	worst, _, err := c.WorstCase(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	best, _, err := c.BestCase(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(worst-best) > 1e-9 {
		t.Errorf("full-chip TSP should be unique: %.4f vs %.4f", worst, best)
	}
}

func TestRangeErrors(t *testing.T) {
	m := model100(t)
	c, err := New(m, 80)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.WorstCase(context.Background(), 0); err == nil {
		t.Errorf("n=0 should error")
	}
	if _, _, err := c.WorstCase(context.Background(), 101); err == nil {
		t.Errorf("n>cores should error")
	}
	if _, _, err := c.BestCase(context.Background(), -1); err == nil {
		t.Errorf("n<0 should error")
	}
	if _, err := c.Table(context.Background(), 0); err == nil {
		t.Errorf("table 0 should error")
	}
	if _, err := c.Table(context.Background(), 101); err == nil {
		t.Errorf("oversized table should error")
	}
	if c.Tcrit() != 80 {
		t.Errorf("Tcrit = %v", c.Tcrit())
	}
}

func TestTableMonotone(t *testing.T) {
	m := model100(t)
	c, err := New(m, 80)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := c.Table(context.Background(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab) != 30 {
		t.Fatalf("table size %d", len(tab))
	}
	for i := 1; i < len(tab); i++ {
		if tab[i].PerCoreW > tab[i-1].PerCoreW+1e-9 {
			t.Errorf("per-core TSP increased at n=%d", tab[i].ActiveCores)
		}
		// Total safe power grows with more (cooler) cores.
		if tab[i].TotalW < tab[i-1].TotalW-1e-9 {
			t.Errorf("total TSP decreased at n=%d", tab[i].ActiveCores)
		}
	}
}

// Property: adding a core to an active set never increases its TSP.
func TestGivenMonotoneProperty(t *testing.T) {
	m := model100(t)
	c, err := New(m, 80)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(100)
		n := 1 + rng.Intn(98)
		base := perm[:n]
		extended := perm[:n+1]
		pBase, err := c.Given(context.Background(), base)
		if err != nil {
			return false
		}
		pExt, err := c.Given(context.Background(), extended)
		if err != nil {
			return false
		}
		return pExt <= pBase+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: TSP scales linearly with threshold headroom above the
// ambient field (by linearity of the model).
func TestGivenLinearInHeadroomProperty(t *testing.T) {
	m := model100(t)
	c80, err := New(m, 80)
	if err != nil {
		t.Fatal(err)
	}
	amb := m.Ambient()
	c99, err := New(m, amb+2*(80-amb))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(100)
		n := 1 + rng.Intn(99)
		active := perm[:n]
		p1, err := c80.Given(context.Background(), active)
		if err != nil {
			return false
		}
		p2, err := c99.Given(context.Background(), active)
		if err != nil {
			return false
		}
		return math.Abs(p2-2*p1) < 1e-6*(1+p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestWorstCasePrefixConsistency pins the property the single-walk Table
// relies on: the greedy n-core placement is a prefix of the max-core
// placement, and Table's prefix-evaluated values are bit-identical to
// calling WorstCase (and Given) per core count.
func TestWorstCasePrefixConsistency(t *testing.T) {
	c, err := New(model100(t), 80)
	if err != nil {
		t.Fatal(err)
	}
	const max = 40
	_, full, err := c.WorstCase(context.Background(), max)
	if err != nil {
		t.Fatal(err)
	}
	table, err := c.Table(context.Background(), max)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != max {
		t.Fatalf("table length %d", len(table))
	}
	for _, n := range []int{1, 2, 7, 25, max} {
		p, active, err := c.WorstCase(context.Background(), n)
		if err != nil {
			t.Fatal(err)
		}
		if len(active) != n {
			t.Fatalf("WorstCase(%d) placed %d cores", n, len(active))
		}
		for i, a := range active {
			if a != full[i] {
				t.Fatalf("WorstCase(%d) not a prefix of WorstCase(%d) at %d: %d vs %d", n, max, i, a, full[i])
			}
		}
		if table[n-1].PerCoreW != p {
			t.Fatalf("Table entry %d = %v, WorstCase = %v", n, table[n-1].PerCoreW, p)
		}
		given, err := c.Given(context.Background(), active)
		if err != nil {
			t.Fatal(err)
		}
		if given != p {
			t.Fatalf("Given(placement) = %v, WorstCase = %v", given, p)
		}
	}
}

func BenchmarkTSPWorstCase(b *testing.B) {
	c, err := New(model100(b), 80)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the influence matrix so the benchmark isolates the greedy walk.
	if _, _, err := c.WorstCase(context.Background(), 1); err != nil {
		b.Fatal(err)
	}
	b.Run("WorstCase100", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := c.WorstCase(context.Background(), 100); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Table100", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Table(context.Background(), 100); err != nil {
				b.Fatal(err)
			}
		}
	})
}
