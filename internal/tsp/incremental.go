package tsp

import (
	"context"
	"fmt"
)

// Incremental maintains TSP for a mutable active-core set. The RC model
// is linear, so the per-row accumulated influence Σ_{j∈S} B[i][j] — the
// only set-dependent input of the TSP formula — changes by exactly one
// influence column when one core joins or leaves the set. Add and Remove
// therefore cost O(cores) each instead of the O(|S|·cores) rebuild
// Given performs, which is the cheap re-evaluation DarkGates-style
// schedulers need when they move one core at a time.
//
// Invariant: after any sequence of Add/Remove, TSP() equals
// Given(activeSet) up to floating-point reassociation — the row sums
// hold the same mathematical value but may have been accumulated in a
// different order (exactly equal when cores were only ever added, in
// order). Removal subtracts the column that was previously added, so
// long alternating sequences stay within a few ULPs of a fresh build.
type Incremental struct {
	c      *Calculator
	inf    influenceAt
	inSet  []bool
	active []int // insertion order
	rowSum []float64
}

// influenceAt is the read-only slice of the influence matrix the updater
// needs; it matches *linalg.Matrix.
type influenceAt interface {
	At(i, j int) float64
}

// Incremental returns an updater seeded with an empty active set. The
// context bounds the influence-matrix build (a cache hit for any model
// that already served a TSP query).
func (c *Calculator) Incremental(ctx context.Context) (*Incremental, error) {
	inf, err := c.model.InfluenceMatrix(ctx)
	if err != nil {
		return nil, err
	}
	nb := c.model.NumBlocks()
	return &Incremental{
		c:      c,
		inf:    inf,
		inSet:  make([]bool, nb),
		rowSum: make([]float64, nb),
	}, nil
}

// Add activates one core, updating every row sum by its influence
// column.
func (u *Incremental) Add(core int) error {
	if core < 0 || core >= len(u.inSet) {
		return fmt.Errorf("tsp: core index %d out of range [0,%d)", core, len(u.inSet))
	}
	if u.inSet[core] {
		return fmt.Errorf("tsp: core %d already active", core)
	}
	u.inSet[core] = true
	u.active = append(u.active, core)
	for i := range u.rowSum {
		u.rowSum[i] += u.inf.At(i, core)
	}
	return nil
}

// Remove deactivates one core, subtracting its influence column from
// every row sum.
func (u *Incremental) Remove(core int) error {
	if core < 0 || core >= len(u.inSet) {
		return fmt.Errorf("tsp: core index %d out of range [0,%d)", core, len(u.inSet))
	}
	if !u.inSet[core] {
		return fmt.Errorf("tsp: core %d not active", core)
	}
	u.inSet[core] = false
	for k, a := range u.active {
		if a == core {
			u.active = append(u.active[:k], u.active[k+1:]...)
			break
		}
	}
	for i := range u.rowSum {
		u.rowSum[i] -= u.inf.At(i, core)
	}
	return nil
}

// SetActive diffs the requested set against the current one and applies
// only the membership changes, preserving the incremental cost when two
// consecutive sets overlap heavily.
func (u *Incremental) SetActive(cores []int) error {
	want := make([]bool, len(u.inSet))
	for _, c := range cores {
		if c < 0 || c >= len(u.inSet) {
			return fmt.Errorf("tsp: core index %d out of range [0,%d)", c, len(u.inSet))
		}
		if want[c] {
			return fmt.Errorf("tsp: duplicate core index %d", c)
		}
		want[c] = true
	}
	// Removals first (over a snapshot: Remove mutates u.active).
	var drop []int
	for _, a := range u.active {
		if !want[a] {
			drop = append(drop, a)
		}
	}
	for _, a := range drop {
		if err := u.Remove(a); err != nil {
			return err
		}
	}
	for _, c := range cores {
		if !u.inSet[c] {
			if err := u.Add(c); err != nil {
				return err
			}
		}
	}
	return nil
}

// Active returns the current active set in activation order. The slice
// is a copy and safe to retain.
func (u *Incremental) Active() []int {
	out := make([]int, len(u.active))
	copy(out, u.active)
	return out
}

// TSP evaluates the budget for the current active set from the
// maintained row sums.
func (u *Incremental) TSP() (float64, error) {
	if len(u.active) == 0 {
		return 0, fmt.Errorf("tsp: empty active set")
	}
	return u.c.evalTSP(u.rowSum, len(u.active))
}
