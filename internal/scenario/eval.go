package scenario

import (
	"context"
	"fmt"
	"strconv"

	"darksim/internal/apps"
	"darksim/internal/mapping"
	"darksim/internal/metrics"
	"darksim/internal/progress"
	"darksim/internal/report"
	"darksim/internal/tsp"
)

// AppResult is the fill outcome for one workload entry.
type AppResult struct {
	App      string  `json:"app"`
	CoreType string  `json:"core_type"`
	FGHz     float64 `json:"f_ghz"`
	Threads  int     `json:"threads"`
	// InstancesRequested/Powered: the spec's cap vs what the TDP fill
	// could afford. PartialThreads is the thread count of a final
	// smaller instance soaking up the remaining budget (0 if none).
	InstancesRequested int `json:"instances_requested"`
	InstancesPowered   int `json:"instances_powered"`
	PartialThreads     int `json:"partial_threads,omitempty"`
	ActiveCores        int `json:"active_cores"`
	// PerCoreW is the Equation (1) per-core power at the fill
	// temperature (TDTM); PowerW is the entry's budgeted total.
	PerCoreW float64 `json:"per_core_w"`
	PowerW   float64 `json:"power_w"`
	// SpeedupPerInstance is the Amdahl speedup of one full instance on
	// this core type; GIPS is the entry's total throughput.
	SpeedupPerInstance float64 `json:"speedup_per_instance"`
	GIPS               float64 `json:"gips"`
}

// Result is one evaluated scenario: the constraint-system view per
// workload entry (the Charm-exemplar quantities) plus the thermal ground
// truth of the combined mapping on the compiled platform.
type Result struct {
	Name         string      `json:"name,omitempty"`
	Hash         string      `json:"hash"`
	Node         string      `json:"node"`
	Floorplan    string      `json:"floorplan"`
	TDPW         float64     `json:"tdp_w"`
	TotalCores   int         `json:"total_cores"`
	TotalAreaMM2 float64     `json:"total_area_mm2"`
	CoreTypes    []CoreType  `json:"core_types"`
	Apps         []AppResult `json:"apps"`
	// Summary is the steady-state evaluation of the combined plan
	// (leakage/temperature fixed point through the thermal solver).
	Summary     metrics.Summary `json:"summary"`
	DarkPercent float64         `json:"dark_percent"`
	ExceedsTDTM bool            `json:"exceeds_tdtm"`
	// TSPPerCoreW is the worst-case thermal safe power per active core
	// at this active count (0 when the chip is fully dark).
	TSPPerCoreW float64 `json:"tsp_per_core_w,omitempty"`
}

// Evaluate runs the TDP fill on the compiled platform and grounds the
// outcome thermally.
//
// The fill is the paper's §3.1 estimation generalized to a mix: walk the
// workload entries in normalized order, give each the remaining budget
// and the remaining cores of its type, and power whole instances (plus
// one partial instance when the entry's cap allows) until either runs
// out. On a single-entry, single-type grid spec this arithmetic is
// exactly mapping.TDPMap's — the differential check in internal/verify
// pins the compiled scenario to DarkSiliconUnderTDP bit for bit.
func (sc *Scenario) Evaluate(ctx context.Context) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := sc.Platform
	res := &Result{
		Name:         sc.Spec.Name,
		Hash:         sc.Hash,
		Node:         p.Node.String(),
		Floorplan:    sc.Spec.Floorplan,
		TDPW:         sc.Spec.TDPW,
		TotalCores:   p.NumCores(),
		TotalAreaMM2: sc.TotalAreaMM2,
		CoreTypes:    sc.Spec.CoreTypes,
	}

	// With a progress sink on the context, each workload entry's fill
	// streams as a one-row fragment the moment it is decided, and the
	// thermal ground truth arrives as the final point. Points here are
	// sequential (the fill walks entries in spec order).
	emitting := progress.Enabled(ctx)
	totalPoints := len(sc.Spec.Apps) + 1 // entries + thermal summary

	plan, entries, err := sc.fill(func(entryIdx int, entry AppResult) {
		if emitting {
			frag := fillTable(fmt.Sprintf("TDP fill — entry: %s on %s", entry.App, entry.CoreType))
			frag.AddRow(fillRow(entry)...)
			progress.Emit(ctx, progress.Point{Table: frag, Done: entryIdx + 1, Total: totalPoints})
		}
	})
	if err != nil {
		return nil, err
	}
	res.Apps = entries

	label := sc.Spec.Name
	if label == "" {
		label = "scenario " + sc.Hash[:12]
	}
	sum, err := p.Summarize(label, plan)
	if err != nil {
		return nil, err
	}
	res.Summary = sum
	res.DarkPercent = 100 * sum.DarkFraction()
	res.ExceedsTDTM = sum.PeakTempC > p.TDTM

	if sum.ActiveCores > 0 {
		calc, err := tsp.New(p.Thermal, p.TDTM)
		if err != nil {
			return nil, err
		}
		budget, _, err := calc.WorstCase(ctx, sum.ActiveCores)
		if err != nil {
			return nil, err
		}
		res.TSPPerCoreW = budget
	}
	if emitting {
		progress.Emit(ctx, progress.Point{
			Table: res.summaryTable(), Done: totalPoints, Total: totalPoints,
		})
	}
	return res, nil
}

// FillPlan runs the §3.1 TDP fill alone — the constraint-system half of
// Evaluate, without the thermal ground truth — and returns the resulting
// plan together with the per-entry fill outcomes. The arithmetic is
// byte-identical to Evaluate's (both call the same fill walk), which is
// what lets the policy sandbox's TDPmap adapter pin its instance counts
// to scenario evaluation bit for bit.
func (sc *Scenario) FillPlan() (*mapping.Plan, []AppResult, error) {
	return sc.fill(nil)
}

// fill walks the workload entries in normalized order, giving each the
// remaining TDP budget and the remaining cores of its type, powering
// whole instances (plus one partial instance when the entry's cap allows)
// until either runs out. onEntry, when non-nil, observes each entry's
// outcome the moment it is decided (Evaluate streams these as progress
// fragments).
func (sc *Scenario) fill(onEntry func(entryIdx int, entry AppResult)) (*mapping.Plan, []AppResult, error) {
	p := sc.Platform
	plan := &mapping.Plan{NumCores: p.NumCores()}
	var entries []AppResult

	// cursor[type] is the next free block of that type's range.
	cursor := make(map[string]int, len(sc.Types))
	for _, t := range sc.Types {
		cursor[t.Name] = t.Start
	}
	budget := sc.Spec.TDPW
	for entryIdx, m := range sc.Spec.Apps {
		ct, err := sc.typeByName(m.CoreType)
		if err != nil {
			return nil, nil, err
		}
		app, err := sc.AppFor(m)
		if err != nil {
			return nil, nil, err
		}
		perCore, err := p.CorePower(app, m.FGHz, p.TDTM)
		if err != nil {
			return nil, nil, err
		}
		if perCore <= 0 {
			return nil, nil, fmt.Errorf("scenario: non-positive per-core power for %s on %s", m.App, ct.Name)
		}
		// mapping.TDPMap's arithmetic: whole instances out of the
		// budgeted cores, a partial instance only while under the cap.
		budgetCores := 0
		if budget > 0 {
			budgetCores = int(budget / perCore)
		}
		if free := ct.End - cursor[ct.Name]; budgetCores > free {
			budgetCores = free
		}
		instances := budgetCores / m.Threads
		if instances > m.Instances {
			instances = m.Instances
		}
		active := instances * m.Threads
		partial := 0
		if instances < m.Instances {
			partial = budgetCores - active
			if partial > 0 {
				active += partial
			}
		}
		start := cursor[ct.Name]
		cursor[ct.Name] = start + active
		for i := 0; i < instances; i++ {
			plan.Placements = append(plan.Placements, mapping.Placement{
				App:     app,
				Cores:   blockRange(start+i*m.Threads, m.Threads),
				FGHz:    m.FGHz,
				Threads: m.Threads,
			})
		}
		if partial > 0 {
			plan.Placements = append(plan.Placements, mapping.Placement{
				App:     app,
				Cores:   blockRange(start+instances*m.Threads, partial),
				FGHz:    m.FGHz,
				Threads: partial,
			})
		}
		entry := AppResult{
			App:                m.App,
			CoreType:           m.CoreType,
			FGHz:               m.FGHz,
			Threads:            m.Threads,
			InstancesRequested: m.Instances,
			InstancesPowered:   instances,
			PartialThreads:     partial,
			ActiveCores:        active,
			PerCoreW:           perCore,
			PowerW:             float64(active) * perCore,
			SpeedupPerInstance: app.Speedup(m.Threads),
			GIPS:               float64(instances)*app.InstanceGIPS(m.FGHz, m.Threads) + app.InstanceGIPS(m.FGHz, partial),
		}
		budget -= entry.PowerW
		entries = append(entries, entry)
		if onEntry != nil {
			onEntry(entryIdx, entry)
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, nil, fmt.Errorf("scenario: fill produced an invalid plan: %w", err)
	}
	return plan, entries, nil
}

// AppFor resolves one workload entry to its core-type-specialized catalog
// application — the apps.App the fill (and any policy driving this
// scenario) actually runs.
func (sc *Scenario) AppFor(m AppMix) (apps.App, error) {
	ct, err := sc.typeByName(m.CoreType)
	if err != nil {
		return apps.App{}, err
	}
	base, err := apps.ByName(m.App)
	if err != nil {
		return apps.App{}, err
	}
	return scaleApp(base, ct), nil
}

// scaleApp specializes a catalog application to a core type: PerfScale
// multiplies per-thread IPC, PowerScale multiplies the dynamic and
// frequency-independent power constants. Unit scales return the catalog
// value bit for bit.
func scaleApp(a apps.App, ct CompiledType) apps.App {
	a.IPC *= ct.PerfScale
	a.Ceff22NF *= ct.PowerScale
	a.Pind22W *= ct.PowerScale
	return a
}

// blockRange returns the contiguous block indices [start, start+n).
func blockRange(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i
	}
	return out
}

// Tables renders the result in the repo's structured-report form: the
// chip, the constraint-system fill per workload entry, and the thermal
// summary.
func (r *Result) Tables() []*report.Table {
	name := r.Name
	if name == "" {
		name = r.Hash[:12]
	}
	chip := &report.Table{
		Title:   fmt.Sprintf("Scenario %s: chip, %s, %d cores, TDP %.0f W (%s floorplan)", name, r.Node, r.TotalCores, r.TDPW, r.Floorplan),
		Columns: []string{"core type", "count", "area scale", "power scale", "perf scale"},
	}
	for _, t := range r.CoreTypes {
		chip.AddRow(t.Name, strconv.Itoa(t.Count),
			fmt.Sprintf("%.2f", t.AreaScale),
			fmt.Sprintf("%.2f", t.PowerScale),
			fmt.Sprintf("%.2f", t.PerfScale))
	}
	chip.AddNote("die area: %.1f mm²", r.TotalAreaMM2)
	chip.AddNote("spec hash: %s", r.Hash)

	fill := fillTable("TDP fill (constraint system per workload entry)")
	for _, a := range r.Apps {
		fill.AddRow(fillRow(a)...)
	}

	return []*report.Table{chip, fill, r.summaryTable()}
}

// fillTable returns an empty grid in the TDP-fill column shape, shared
// by the full result and the streamed per-entry fragments.
func fillTable(title string) *report.Table {
	return &report.Table{
		Title: title,
		Columns: []string{"app", "core type", "f [GHz]", "threads",
			"instances", "powered", "active cores", "W/core", "power [W]", "speedup", "GIPS"},
	}
}

// fillRow formats one workload entry's fill outcome as table cells.
func fillRow(a AppResult) []string {
	return []string{
		a.App, a.CoreType,
		fmt.Sprintf("%.1f", a.FGHz),
		strconv.Itoa(a.Threads),
		strconv.Itoa(a.InstancesRequested),
		strconv.Itoa(a.InstancesPowered),
		strconv.Itoa(a.ActiveCores),
		fmt.Sprintf("%.3f", a.PerCoreW),
		fmt.Sprintf("%.1f", a.PowerW),
		fmt.Sprintf("%.2f", a.SpeedupPerInstance),
		fmt.Sprintf("%.1f", a.GIPS),
	}
}

// summaryTable is the thermal ground-truth grid — also the final
// fragment a streamed evaluation emits.
func (r *Result) summaryTable() *report.Table {
	sum := &report.Table{
		Title:   "Thermal ground truth (steady state on the compiled platform)",
		Columns: []string{"active", "total", "dark [%]", "GIPS", "power [W]", "peak [°C]"},
	}
	sum.AddRow(strconv.Itoa(r.Summary.ActiveCores), strconv.Itoa(r.Summary.TotalCores),
		fmt.Sprintf("%.1f", r.DarkPercent),
		fmt.Sprintf("%.1f", r.Summary.GIPS),
		fmt.Sprintf("%.1f", r.Summary.PowerW),
		fmt.Sprintf("%.1f", r.Summary.PeakTempC))
	if r.ExceedsTDTM {
		sum.AddNote("peak temperature exceeds TDTM — the TDP budget is thermally unsafe (the paper's Observation 1)")
	}
	if r.TSPPerCoreW > 0 {
		sum.AddNote("worst-case TSP at %d active cores: %.3f W/core (%.1f W total)",
			r.Summary.ActiveCores, r.TSPPerCoreW, r.TSPPerCoreW*float64(r.Summary.ActiveCores))
	}
	return sum
}
