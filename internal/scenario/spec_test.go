package scenario

import (
	"errors"
	"strings"
	"testing"

	"darksim/internal/core"
	"darksim/internal/tech"
)

func validSpec() Spec {
	return Spec{
		Name:      "t",
		NodeNM:    16,
		TDPW:      220,
		CoreTypes: []CoreType{{Name: "core", Count: 100}},
		Apps:      []AppMix{{App: "x264", Instances: 4}},
	}
}

func TestParseMalformed(t *testing.T) {
	cases := map[string]string{
		"garbage":       "{not json",
		"unknown field": `{"node_nm":16,"tdp":220}`,
		"trailing":      `{"node_nm":16} {"more":1}`,
		"wrong type":    `{"node_nm":"sixteen"}`,
	}
	for name, body := range cases {
		if _, err := Parse([]byte(body)); !errors.Is(err, ErrSpec) {
			t.Errorf("%s: err = %v, want ErrSpec", name, err)
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	ns, err := Normalize(validSpec())
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if ns.TDTMC != core.DefaultTDTM {
		t.Errorf("TDTMC = %g, want %g", ns.TDTMC, core.DefaultTDTM)
	}
	if ns.Floorplan != FloorplanGrid {
		t.Errorf("Floorplan = %q, want grid", ns.Floorplan)
	}
	ct := ns.CoreTypes[0]
	if ct.AreaScale != 1 || ct.PowerScale != 1 || ct.PerfScale != 1 {
		t.Errorf("scales = %g/%g/%g, want 1/1/1", ct.AreaScale, ct.PowerScale, ct.PerfScale)
	}
	m := ns.Apps[0]
	if m.Threads != 8 {
		t.Errorf("Threads = %d, want 8", m.Threads)
	}
	if m.CoreType != "core" {
		t.Errorf("CoreType = %q, want core", m.CoreType)
	}
	spec, err := tech.SpecFor(tech.Node16)
	if err != nil {
		t.Fatal(err)
	}
	if m.FGHz != spec.FmaxGHz {
		t.Errorf("FGHz = %g, want node fmax %g", m.FGHz, spec.FmaxGHz)
	}
}

func TestNormalizeRejects(t *testing.T) {
	mutate := func(f func(*Spec)) Spec {
		s := validSpec()
		f(&s)
		return s
	}
	cases := map[string]Spec{
		"unknown node":      mutate(func(s *Spec) { s.NodeNM = 14 }),
		"zero TDP":          mutate(func(s *Spec) { s.TDPW = 0 }),
		"negative TDP":      mutate(func(s *Spec) { s.TDPW = -5 }),
		"negative TDTM":     mutate(func(s *Spec) { s.TDTMC = -1 }),
		"no core types":     mutate(func(s *Spec) { s.CoreTypes = nil }),
		"unnamed type":      mutate(func(s *Spec) { s.CoreTypes[0].Name = "" }),
		"zero count":        mutate(func(s *Spec) { s.CoreTypes[0].Count = 0 }),
		"negative scale":    mutate(func(s *Spec) { s.CoreTypes[0].PowerScale = -2 }),
		"too many cores":    mutate(func(s *Spec) { s.CoreTypes[0].Count = MaxCores + 1 }),
		"duplicate types":   mutate(func(s *Spec) { s.CoreTypes = append(s.CoreTypes, s.CoreTypes[0]) }),
		"no apps":           mutate(func(s *Spec) { s.Apps = nil }),
		"unknown app":       mutate(func(s *Spec) { s.Apps[0].App = "doom" }),
		"zero instances":    mutate(func(s *Spec) { s.Apps[0].Instances = 0 }),
		"nine threads":      mutate(func(s *Spec) { s.Apps[0].Threads = 9 }),
		"unknown core type": mutate(func(s *Spec) { s.Apps[0].CoreType = "gpu" }),
		"f above fmax":      mutate(func(s *Spec) { s.Apps[0].FGHz = 99 }),
		"bad floorplan":     mutate(func(s *Spec) { s.Floorplan = "spiral" }),
		"grid with two types": mutate(func(s *Spec) {
			s.Floorplan = FloorplanGrid
			s.CoreTypes = append(s.CoreTypes, CoreType{Name: "big", Count: 2})
		}),
	}
	for name, s := range cases {
		if _, err := Normalize(s); !errors.Is(err, ErrSpec) {
			t.Errorf("%s: err = %v, want ErrSpec", name, err)
		}
	}
}

func TestHashStableUnderReordering(t *testing.T) {
	a := Spec{
		NodeNM: 16,
		TDPW:   220,
		CoreTypes: []CoreType{
			{Name: "big", Count: 4, AreaScale: 4, PowerScale: 2.5, PerfScale: 1.8},
			{Name: "little", Count: 84},
		},
		Apps: []AppMix{
			{App: "x264", CoreType: "big", Instances: 4, Threads: 1},
			{App: "swaptions", CoreType: "little", Instances: 3},
		},
	}
	b := a
	// Reorder collections, rename, and spell defaults out explicitly.
	b.Name = "same chip, different spelling"
	b.CoreTypes = []CoreType{a.CoreTypes[1], a.CoreTypes[0]}
	b.Apps = []AppMix{a.Apps[1], a.Apps[0]}
	b.CoreTypes[0].AreaScale = 1
	b.CoreTypes[0].PowerScale = 1
	b.CoreTypes[0].PerfScale = 1
	b.Apps[0].Threads = 8
	b.TDTMC = core.DefaultTDTM
	b.Floorplan = FloorplanShelves

	ha, err := Hash(a)
	if err != nil {
		t.Fatalf("Hash(a): %v", err)
	}
	hb, err := Hash(b)
	if err != nil {
		t.Fatalf("Hash(b): %v", err)
	}
	if ha != hb {
		t.Fatalf("reordered spec hashes differ: %s vs %s", ha, hb)
	}
	if len(ha) != 64 {
		t.Fatalf("hash %q is not a sha256 hex string", ha)
	}

	// A material change must move the hash.
	c := a
	c.TDPW = 221
	hc, err := Hash(c)
	if err != nil {
		t.Fatalf("Hash(c): %v", err)
	}
	if hc == ha {
		t.Fatal("changing TDP did not change the hash")
	}
}

func TestPackNormalizes(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Pack() {
		if _, err := Normalize(s); err != nil {
			t.Errorf("pack scenario %q does not normalize: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate pack name %q", s.Name)
		}
		seen[s.Name] = true
	}
	for _, want := range []string{PackSymmetric, PackAsymmetric, PackMultiInstancing} {
		if !seen[want] {
			t.Errorf("pack is missing %q", want)
		}
	}
	if _, err := PackByName("no_such_scenario"); err == nil || !strings.Contains(err.Error(), "unknown pack scenario") {
		t.Errorf("PackByName(bogus) err = %v", err)
	}
	got, err := PackByName(PackSymmetric)
	if err != nil || got.Name != PackSymmetric {
		t.Errorf("PackByName(%q) = %+v, %v", PackSymmetric, got, err)
	}
}
