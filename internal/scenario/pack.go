package scenario

import (
	"fmt"

	"darksim/internal/apps"
	"darksim/internal/experiments"
	"darksim/internal/tech"
)

// The built-in scenario pack reproduces the three Charm exemplar
// constraint systems (dark_silicon_symmetric, dark_silicon_asymmetric,
// dark_silicon_multiinstancing) on this repo's calibrated platforms.
const (
	PackSymmetric       = "dark_silicon_symmetric"
	PackAsymmetric      = "dark_silicon_asymmetric"
	PackMultiInstancing = "dark_silicon_multiinstancing"
)

// SymmetricSpec is the paper's fixed platform as a spec: one core type,
// the node's standard core count (100/198/361), a uniform grid, and
// 8-thread instances of one application at fmax with an unbounded
// instance cap. Compiling and evaluating it reproduces
// DarkSiliconUnderTDP on that platform bit for bit — the differential
// check internal/verify runs.
func SymmetricSpec(node tech.Node, app string, tdpW float64) Spec {
	cores := experiments.CoresForNode(node)
	return Spec{
		Name:      fmt.Sprintf("%s %s %s", PackSymmetric, node, app),
		NodeNM:    int(node),
		TDPW:      tdpW,
		CoreTypes: []CoreType{{Name: "core", Count: cores}},
		// Instances = core count: never the binding constraint, so the
		// fill follows TDPMap's unbounded partial-instance rule.
		Apps: []AppMix{{App: app, Instances: cores}},
	}
}

// Pack returns the built-in scenarios in stable order.
//
//   - symmetric: the Fig. 5 headline point — swaptions (the hungriest
//     app) on the 16 nm 100-core grid at TDP 220 W.
//   - asymmetric: a big.LITTLE chip — 4 big cores (4× area, 2.5× power,
//     1.8× perf) hosting single-thread serial phases, 84 little cores
//     running the parallel phase, shelf-packed.
//   - multi-instancing: a consolidated mix of three applications with
//     explicit instance caps competing for one TDP.
func Pack() []Spec {
	sym := SymmetricSpec(tech.Node16, "swaptions", 220)
	sym.Name = PackSymmetric
	return []Spec{
		sym,
		{
			Name:   PackAsymmetric,
			NodeNM: int(tech.Node16),
			TDPW:   220,
			CoreTypes: []CoreType{
				{Name: "big", Count: 4, AreaScale: 4, PowerScale: 2.5, PerfScale: 1.8},
				{Name: "little", Count: 84},
			},
			Apps: []AppMix{
				// Serial phases pinned to big cores, one thread each.
				{App: "x264", CoreType: "big", Instances: 4, Threads: 1},
				// The parallel phase spreads over the little cores.
				{App: "x264", CoreType: "little", Instances: 10, Threads: apps.MaxThreadsPerInstance},
			},
		},
		{
			Name:   PackMultiInstancing,
			NodeNM: int(tech.Node16),
			TDPW:   220,
			CoreTypes: []CoreType{
				{Name: "core", Count: 100},
			},
			Apps: []AppMix{
				{App: "x264", Instances: 4},
				{App: "blackscholes", Instances: 3},
				{App: "swaptions", Instances: 3},
			},
		},
	}
}

// PackByName returns one built-in scenario.
func PackByName(name string) (Spec, error) {
	for _, s := range Pack() {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, 0, len(Pack()))
	for _, s := range Pack() {
		names = append(names, s.Name)
	}
	return Spec{}, fmt.Errorf("%w: unknown pack scenario %q (have %v)", ErrSpec, name, names)
}
