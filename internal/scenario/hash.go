package scenario

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
)

// Hash returns the content hash of a spec: SHA-256 over the canonical
// JSON encoding of its normalized form, as a hex string. Specs that
// differ only in field order, collection order, display name, or
// explicit-vs-default values hash identically, so the service result
// cache, singleflight coalescing and the influence cache all key on what
// the spec means rather than how it was written.
func Hash(s Spec) (string, error) {
	ns, err := Normalize(s)
	if err != nil {
		return "", err
	}
	return hashNormalized(ns), nil
}

// hashNormalized hashes an already-normalized spec. The display name is
// excluded: identity is content.
func hashNormalized(ns Spec) string {
	ns.Name = ""
	// encoding/json emits struct fields in declaration order and the
	// collections are sorted by Normalize, so Marshal is canonical.
	data, err := json.Marshal(ns)
	if err != nil {
		// Spec contains only plain data types; Marshal cannot fail.
		panic(fmt.Sprintf("scenario: marshal normalized spec: %v", err))
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}
