package scenario

import (
	"fmt"

	"darksim/internal/core"
	"darksim/internal/experiments"
	"darksim/internal/floorplan"
	"darksim/internal/tech"
)

// CompiledType is one core type bound to its contiguous block-index range
// [Start, End) on the compiled floorplan.
type CompiledType struct {
	CoreType
	Start, End int
}

// Scenario is a compiled spec: the normalized spec, its content hash, and
// the platform (floorplan + thermal model + v/f machinery) it describes.
type Scenario struct {
	Spec Spec // normalized
	Hash string
	Tech tech.Spec
	// Platform plugs into the same solver, TSP and influence-cache
	// machinery the paper's fixed figures use.
	Platform *core.Platform
	// Types holds the core types in normalized (name) order with their
	// block ranges; shelf packing appends groups in exactly this order.
	Types        []CompiledType
	TotalAreaMM2 float64
}

// Compile normalizes, hashes and materializes a spec.
//
// A paper-shaped grid spec (single type, unit scales, default TDTM) goes
// through the shared experiments platform cache, so scenarios reuse the
// exact platform objects — and therefore the factored thermal networks
// and warm influence matrices — of the named figures. Everything else
// builds a dedicated platform over core.NewPlatformFrom; the process-wide
// influence LRU still keys on geometry, so identical chips built by
// different requests share influence work regardless.
func Compile(spec Spec) (*Scenario, error) {
	ns, err := Normalize(spec)
	if err != nil {
		return nil, err
	}
	node := tech.Node(ns.NodeNM)
	ts, err := tech.SpecFor(node)
	if err != nil {
		return nil, err
	}

	var p *core.Platform
	types := make([]CompiledType, 0, len(ns.CoreTypes))
	var totalArea float64
	switch ns.Floorplan {
	case FloorplanGrid:
		ct := ns.CoreTypes[0]
		totalArea = float64(ct.Count) * ts.CoreAreaMM2 * ct.AreaScale
		if ct.AreaScale == 1 && ns.TDTMC == core.DefaultTDTM {
			p, err = experiments.PlatformFor(node, ct.Count)
		} else {
			var fp *floorplan.Floorplan
			fp, err = floorplan.NewGridForCount(ct.Count, ts.CoreAreaMM2*ct.AreaScale)
			if err == nil {
				p, err = core.NewPlatformFrom(node, fp, core.Options{TDTM: ns.TDTMC})
			}
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: compile grid: %w", err)
		}
		types = append(types, CompiledType{CoreType: ct, Start: 0, End: ct.Count})
	case FloorplanShelves:
		groups := make([]floorplan.ShelfGroup, len(ns.CoreTypes))
		at := 0
		for i, ct := range ns.CoreTypes {
			area := ts.CoreAreaMM2 * ct.AreaScale
			groups[i] = floorplan.ShelfGroup{Name: ct.Name, Count: ct.Count, AreaMM2: area}
			totalArea += float64(ct.Count) * area
			types = append(types, CompiledType{CoreType: ct, Start: at, End: at + ct.Count})
			at += ct.Count
		}
		fp, err := floorplan.NewShelves(groups)
		if err != nil {
			return nil, fmt.Errorf("scenario: compile shelves: %w", err)
		}
		p, err = core.NewPlatformFrom(node, fp, core.Options{TDTM: ns.TDTMC})
		if err != nil {
			return nil, fmt.Errorf("scenario: compile shelves: %w", err)
		}
	default:
		return nil, fmt.Errorf("%w: floorplan %q", ErrSpec, ns.Floorplan)
	}

	return &Scenario{
		Spec:         ns,
		Hash:         hashNormalized(ns),
		Tech:         ts,
		Platform:     p,
		Types:        types,
		TotalAreaMM2: totalArea,
	}, nil
}

// typeByName returns the compiled type for a (validated) name.
func (sc *Scenario) typeByName(name string) (CompiledType, error) {
	for _, t := range sc.Types {
		if t.Name == name {
			return t, nil
		}
	}
	return CompiledType{}, fmt.Errorf("scenario: compiled scenario has no core type %q", name)
}
