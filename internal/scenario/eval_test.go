package scenario

import (
	"context"
	"testing"

	"darksim/internal/apps"
	"darksim/internal/experiments"
	"darksim/internal/tech"
)

// TestSymmetricMatchesDarkSiliconUnderTDP is the package-local half of
// the differential contract (internal/verify runs the full node × app
// sweep): a paper-shaped spec compiled through the scenario engine must
// reproduce DarkSiliconUnderTDP exactly — same platform object, same
// plan arithmetic, bit-identical summary.
func TestSymmetricMatchesDarkSiliconUnderTDP(t *testing.T) {
	node, tdp := tech.Node16, 220.0
	sc, err := Compile(SymmetricSpec(node, "swaptions", tdp))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	p, err := experiments.PlatformFor(node, experiments.CoresForNode(node))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Platform != p {
		t.Fatal("paper-shaped grid spec did not reuse the shared platform cache entry")
	}
	res, err := sc.Evaluate(context.Background())
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	app, err := apps.ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.DarkSiliconUnderTDP(app, tdp, sc.Tech.FmaxGHz)
	if err != nil {
		t.Fatal(err)
	}
	w := want.Summary
	g := res.Summary
	if g.ActiveCores != w.ActiveCores || g.TotalCores != w.TotalCores ||
		g.GIPS != w.GIPS || g.PowerW != w.PowerW || g.PeakTempC != w.PeakTempC {
		t.Fatalf("scenario summary %+v != DarkSiliconUnderTDP summary %+v", g, w)
	}
	if res.DarkPercent <= 0 {
		t.Fatalf("expected dark silicon at TDP %g W, got %.1f%%", tdp, res.DarkPercent)
	}
	if res.TSPPerCoreW <= 0 {
		t.Fatalf("TSPPerCoreW = %g, want > 0", res.TSPPerCoreW)
	}
}

func TestEvaluateAsymmetricShelves(t *testing.T) {
	spec, err := PackByName(PackAsymmetric)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Compile(spec)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if sc.Spec.Floorplan != FloorplanShelves {
		t.Fatalf("floorplan = %q, want shelves", sc.Spec.Floorplan)
	}
	if got := sc.Platform.NumCores(); got != 88 {
		t.Fatalf("NumCores = %d, want 88", got)
	}
	// Normalized type order is alphabetical: big [0,4), little [4,88).
	if sc.Types[0].Name != "big" || sc.Types[0].Start != 0 || sc.Types[0].End != 4 {
		t.Fatalf("big range = %+v", sc.Types[0])
	}
	if sc.Types[1].Name != "little" || sc.Types[1].Start != 4 || sc.Types[1].End != 88 {
		t.Fatalf("little range = %+v", sc.Types[1])
	}
	res, err := sc.Evaluate(context.Background())
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(res.Apps) != 2 {
		t.Fatalf("got %d app results, want 2", len(res.Apps))
	}
	var big, little AppResult
	for _, a := range res.Apps {
		switch a.CoreType {
		case "big":
			big = a
		case "little":
			little = a
		}
	}
	if big.ActiveCores == 0 || little.ActiveCores == 0 {
		t.Fatalf("expected both types active: big=%d little=%d", big.ActiveCores, little.ActiveCores)
	}
	// A big core runs one thread at 2.5x power: it must cost more than a
	// little core running in a parallel pack.
	if big.PerCoreW <= little.PerCoreW {
		t.Fatalf("big per-core %g W <= little %g W", big.PerCoreW, little.PerCoreW)
	}
	if res.Summary.PowerW <= 0 || res.Summary.PeakTempC <= 0 {
		t.Fatalf("implausible summary %+v", res.Summary)
	}
	// The fill never spends more than the budget.
	var spent float64
	for _, a := range res.Apps {
		spent += a.PowerW
	}
	if spent > spec.TDPW {
		t.Fatalf("fill spent %.1f W over the %.0f W TDP", spent, spec.TDPW)
	}
	if len(res.Tables()) != 3 {
		t.Fatalf("Tables() = %d tables, want 3", len(res.Tables()))
	}
}

func TestEvaluateRespectsInstanceCaps(t *testing.T) {
	spec, err := PackByName(PackMultiInstancing)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Evaluate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		if a.InstancesPowered > a.InstancesRequested {
			t.Fatalf("%s powered %d instances over its cap %d", a.App, a.InstancesPowered, a.InstancesRequested)
		}
		if a.PartialThreads != 0 {
			// With capped instance counts the partial rule only fires
			// below the cap; powered == requested forbids a partial.
			if a.InstancesPowered == a.InstancesRequested {
				t.Fatalf("%s has a partial instance despite reaching its cap", a.App)
			}
		}
	}
	if res.Summary.ActiveCores != activeTotal(res) {
		t.Fatalf("summary active %d != fill total %d", res.Summary.ActiveCores, activeTotal(res))
	}
}

func activeTotal(r *Result) int {
	n := 0
	for _, a := range r.Apps {
		n += a.ActiveCores
	}
	return n
}

func TestEvaluateCanceledContext(t *testing.T) {
	sc, err := Compile(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sc.Evaluate(ctx); err == nil {
		t.Fatal("Evaluate with canceled context succeeded")
	}
}
