package scenario

import (
	"testing"
)

// FuzzScenarioSpec drives arbitrary bytes through the full front end:
// Parse must either reject with ErrSpec or yield a struct; anything that
// normalizes must hash deterministically and re-normalize to a fixed
// point with the same hash.
func FuzzScenarioSpec(f *testing.F) {
	f.Add([]byte(`{"node_nm":16,"tdp_w":220,"core_types":[{"name":"core","count":100}],"apps":[{"app":"x264","instances":4}]}`))
	f.Add([]byte(`{"node_nm":8,"tdp_w":1.5,"core_types":[{"name":"b","count":2,"area_scale":4},{"name":"l","count":10}],"apps":[{"app":"canneal","core_type":"l","instances":1,"threads":3,"f_ghz":2.0}]}`))
	f.Add([]byte(`{"node_nm":0}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		ns, err := Normalize(s)
		if err != nil {
			return
		}
		h1, err := Hash(s)
		if err != nil {
			t.Fatalf("spec normalized but Hash failed: %v", err)
		}
		// Normalization is a fixed point and hashing is deterministic.
		ns2, err := Normalize(ns)
		if err != nil {
			t.Fatalf("re-normalize failed: %v", err)
		}
		h2, err := Hash(ns2)
		if err != nil {
			t.Fatalf("re-hash failed: %v", err)
		}
		if h1 != h2 {
			t.Fatalf("hash not stable across normalization: %s vs %s", h1, h2)
		}
		if ns.TotalCores() < 1 || ns.TotalCores() > MaxCores {
			t.Fatalf("normalized spec has %d cores", ns.TotalCores())
		}
	})
}
