// Package scenario is the declarative front end of darksim: a JSON chip +
// workload specification and a compiler from that spec to the same
// platform / floorplan / thermal-model machinery the paper's fixed
// figures run on.
//
// The paper evaluates three hard-wired platforms (100, 198 and 361
// homogeneous cores). A Spec generalizes that to an open-ended family:
// any registered node, an asymmetric core mix (big.LITTLE-style types
// with per-type area/power/perf scaling), an explicit TDP, a floorplan
// policy and an application mix with instance counts. Specs are
// canonicalized (defaults applied, collections sorted) and content-hashed
// so the service layer's result cache, singleflight coalescing and the
// process-wide influence-matrix cache extend from named figures to
// arbitrary user-defined scenarios: two specs that mean the same chip
// share one computation.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"

	"darksim/internal/apps"
	"darksim/internal/core"
	"darksim/internal/tech"
)

// ErrSpec is wrapped by every validation failure, so callers (the service
// layer maps it to 400) can distinguish bad input from compute failure.
var ErrSpec = errors.New("scenario: invalid spec")

// MaxCores bounds the total core count of a spec. It matches the service
// TSP cap: beyond it the block×block influence matrix alone would let a
// single request exhaust memory.
const MaxCores = 4096

// CoreType describes one homogeneous group of cores on the chip. Scales
// are relative to the node's baseline core (1.0 = the paper's core): a
// big.LITTLE "big" core might use AreaScale 4, PowerScale 2.5, PerfScale
// 1.8.
type CoreType struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	// AreaScale multiplies the node's per-core area.
	AreaScale float64 `json:"area_scale,omitempty"`
	// PowerScale multiplies the application's switching capacitance and
	// frequency-independent power on this type.
	PowerScale float64 `json:"power_scale,omitempty"`
	// PerfScale multiplies per-thread IPC on this type.
	PerfScale float64 `json:"perf_scale,omitempty"`
}

// AppMix is one entry of the workload: up to Instances instances of a
// catalog application, each running Threads dependent threads at FGHz on
// cores of type CoreType. The TDP fill powers instances in spec order
// until budget or cores run out; the rest of the chip stays dark.
type AppMix struct {
	App string `json:"app"`
	// CoreType names the core type the instances run on. Empty is
	// allowed when the spec has exactly one type.
	CoreType  string `json:"core_type,omitempty"`
	Instances int    `json:"instances"`
	// Threads per instance, 1..8 (default 8, the paper's setting).
	Threads int `json:"threads,omitempty"`
	// FGHz is the v/f level (default: the node's nominal fmax).
	FGHz float64 `json:"f_ghz,omitempty"`
}

// Floorplan policies.
const (
	// FloorplanGrid is the paper's uniform grid; it requires a single
	// core type. Paper-shaped grids are bit-identical to the fixed
	// platforms of the figures.
	FloorplanGrid = "grid"
	// FloorplanShelves shelf-packs heterogeneous core types row by row;
	// the default whenever the spec has more than one type.
	FloorplanShelves = "shelves"
)

// Spec is a declarative chip + workload description.
type Spec struct {
	// Name labels the scenario in output; it does not affect the content
	// hash (a renamed identical spec shares cache entries).
	Name string `json:"name,omitempty"`
	// NodeNM is the technology node in nm (22, 16, 11, 8).
	NodeNM int `json:"node_nm"`
	// TDPW is the chip power budget in watts.
	TDPW float64 `json:"tdp_w"`
	// TDTMC is the DTM trigger temperature in °C (default 80).
	TDTMC float64 `json:"tdtm_c,omitempty"`
	// Floorplan selects the placement policy ("grid", "shelves"; default
	// grid for one core type, shelves otherwise).
	Floorplan string     `json:"floorplan,omitempty"`
	CoreTypes []CoreType `json:"core_types"`
	Apps      []AppMix   `json:"apps"`
}

// Parse decodes a JSON spec strictly: unknown fields are validation
// errors, so typos ("tdp" for "tdp_w") fail loudly instead of silently
// simulating a different chip.
func Parse(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	// Trailing garbage after the object is also a malformed spec.
	if dec.More() {
		return Spec{}, fmt.Errorf("%w: trailing data after spec object", ErrSpec)
	}
	return s, nil
}

// Normalize validates a spec and returns its canonical form: defaults
// made explicit (TDTM, scales, threads, frequencies, core-type
// references, floorplan policy) and collections sorted. Two specs that
// normalize equal describe the same scenario; Hash is defined over this
// form.
func Normalize(s Spec) (Spec, error) {
	node := tech.Node(s.NodeNM)
	ts, err := tech.SpecFor(node)
	if err != nil {
		return Spec{}, fmt.Errorf("%w: node %d nm: %v", ErrSpec, s.NodeNM, err)
	}
	if !(s.TDPW > 0) || math.IsInf(s.TDPW, 0) {
		return Spec{}, fmt.Errorf("%w: TDP must be a positive number of watts, got %g", ErrSpec, s.TDPW)
	}
	if s.TDTMC == 0 {
		s.TDTMC = core.DefaultTDTM
	}
	if !(s.TDTMC > 0) || math.IsInf(s.TDTMC, 0) {
		return Spec{}, fmt.Errorf("%w: TDTM must be a positive temperature in °C, got %g", ErrSpec, s.TDTMC)
	}

	if len(s.CoreTypes) == 0 {
		return Spec{}, fmt.Errorf("%w: no core types", ErrSpec)
	}
	total := 0
	seen := make(map[string]bool, len(s.CoreTypes))
	types := append([]CoreType(nil), s.CoreTypes...)
	for i, t := range types {
		if t.Name == "" {
			return Spec{}, fmt.Errorf("%w: core type %d has no name", ErrSpec, i)
		}
		if seen[t.Name] {
			return Spec{}, fmt.Errorf("%w: duplicate core type %q", ErrSpec, t.Name)
		}
		seen[t.Name] = true
		if t.Count < 1 {
			return Spec{}, fmt.Errorf("%w: core type %q has count %d", ErrSpec, t.Name, t.Count)
		}
		total += t.Count
		if t.AreaScale == 0 {
			t.AreaScale = 1
		}
		if t.PowerScale == 0 {
			t.PowerScale = 1
		}
		if t.PerfScale == 0 {
			t.PerfScale = 1
		}
		for _, sc := range [...]struct {
			name string
			v    float64
		}{{"area_scale", t.AreaScale}, {"power_scale", t.PowerScale}, {"perf_scale", t.PerfScale}} {
			if !(sc.v > 0) || math.IsInf(sc.v, 0) {
				return Spec{}, fmt.Errorf("%w: core type %q has %s %g", ErrSpec, t.Name, sc.name, sc.v)
			}
		}
		types[i] = t
	}
	if total > MaxCores {
		return Spec{}, fmt.Errorf("%w: %d total cores exceeds the %d-core limit", ErrSpec, total, MaxCores)
	}

	switch s.Floorplan {
	case "":
		if len(types) == 1 {
			s.Floorplan = FloorplanGrid
		} else {
			s.Floorplan = FloorplanShelves
		}
	case FloorplanGrid:
		if len(types) != 1 {
			return Spec{}, fmt.Errorf("%w: the grid floorplan requires exactly one core type, got %d (use %q)",
				ErrSpec, len(types), FloorplanShelves)
		}
	case FloorplanShelves:
	default:
		return Spec{}, fmt.Errorf("%w: unknown floorplan policy %q (want %q or %q)",
			ErrSpec, s.Floorplan, FloorplanGrid, FloorplanShelves)
	}

	if len(s.Apps) == 0 {
		return Spec{}, fmt.Errorf("%w: no applications", ErrSpec)
	}
	mixes := append([]AppMix(nil), s.Apps...)
	for i, m := range mixes {
		if _, err := apps.ByName(m.App); err != nil {
			return Spec{}, fmt.Errorf("%w: app %d: %v", ErrSpec, i, err)
		}
		if m.Instances < 1 {
			return Spec{}, fmt.Errorf("%w: app %q has %d instances", ErrSpec, m.App, m.Instances)
		}
		if m.Threads == 0 {
			m.Threads = apps.MaxThreadsPerInstance
		}
		if m.Threads < 1 || m.Threads > apps.MaxThreadsPerInstance {
			return Spec{}, fmt.Errorf("%w: app %q has %d threads per instance (want 1..%d)",
				ErrSpec, m.App, m.Threads, apps.MaxThreadsPerInstance)
		}
		if m.CoreType == "" {
			if len(types) != 1 {
				return Spec{}, fmt.Errorf("%w: app %q names no core type and the spec has %d types",
					ErrSpec, m.App, len(types))
			}
			m.CoreType = types[0].Name
		}
		if !seen[m.CoreType] {
			return Spec{}, fmt.Errorf("%w: app %q references unknown core type %q", ErrSpec, m.App, m.CoreType)
		}
		if m.FGHz == 0 {
			m.FGHz = ts.FmaxGHz
		}
		if !(m.FGHz > 0) || m.FGHz > ts.FmaxGHz {
			return Spec{}, fmt.Errorf("%w: app %q at %g GHz is outside (0, %g] on %s",
				ErrSpec, m.App, m.FGHz, ts.FmaxGHz, node)
		}
		mixes[i] = m
	}

	sort.Slice(types, func(i, j int) bool { return types[i].Name < types[j].Name })
	sort.Slice(mixes, func(i, j int) bool {
		a, b := mixes[i], mixes[j]
		if a.App != b.App {
			return a.App < b.App
		}
		if a.CoreType != b.CoreType {
			return a.CoreType < b.CoreType
		}
		if a.FGHz != b.FGHz {
			return a.FGHz < b.FGHz
		}
		if a.Threads != b.Threads {
			return a.Threads < b.Threads
		}
		return a.Instances < b.Instances
	})
	s.CoreTypes = types
	s.Apps = mixes
	return s, nil
}

// TotalCores returns the summed core count across types.
func (s Spec) TotalCores() int {
	n := 0
	for _, t := range s.CoreTypes {
		n += t.Count
	}
	return n
}
