// Package vf implements the voltage/frequency relation of the paper's
// Equation (2) and the DVFS machinery built on top of it:
//
//	f = k · (Vdd − Vth)² / Vdd
//
// For a given supply voltage there is a maximum stable frequency; running
// at any higher voltage for the same frequency wastes power, so the paper
// (and this package) always pairs a frequency with the minimum voltage that
// sustains it. Substituting that pairing into the dynamic-power term of
// Equation (1) yields the cubic frequency/dynamic-power relation the paper
// refers to.
//
// The package also provides per-node DVFS ladders (0.2 GHz steps, matching
// the boosting controller of §6) and the STC/NTC/Boost region
// classification of Figure 2.
package vf

import (
	"errors"
	"fmt"
	"math"

	"darksim/internal/tech"
)

// Curve is the V/f relation of Eq.(2) for one technology node.
type Curve struct {
	// K is the fitting factor in GHz·V.
	K float64
	// Vth is the threshold voltage in volts.
	Vth float64
	// VddNominal is the nominal supply voltage; frequencies above the
	// nominal point require boost voltages.
	VddNominal float64
	// FmaxGHz is the maximum nominal (non-boost) frequency in GHz,
	// reached exactly at VddNominal.
	FmaxGHz float64
}

// CurveFor builds the Eq.(2) curve for a technology node.
func CurveFor(n tech.Node) (Curve, error) {
	s, err := tech.SpecFor(n)
	if err != nil {
		return Curve{}, err
	}
	return Curve{K: s.K, Vth: s.Vth, VddNominal: s.VddNominal, FmaxGHz: s.FmaxGHz}, nil
}

// MustCurve is CurveFor but panics on unknown nodes; for tables and tests.
func MustCurve(n tech.Node) Curve {
	c, err := CurveFor(n)
	if err != nil {
		panic(err)
	}
	return c
}

// ErrInfeasible is returned when no voltage in the supported range can
// sustain a requested frequency.
var ErrInfeasible = errors.New("vf: requested frequency is not achievable")

// FrequencyGHz evaluates Eq.(2): the maximum stable frequency in GHz at
// supply voltage vdd. Voltages at or below Vth yield 0 (no switching).
func (c Curve) FrequencyGHz(vdd float64) float64 {
	if vdd <= c.Vth {
		return 0
	}
	dv := vdd - c.Vth
	return c.K * dv * dv / vdd
}

// VoltageFor inverts Eq.(2): the minimum supply voltage that sustains
// fGHz. Solving f·V = k·(V−Vth)² for V gives a quadratic in V:
//
//	k·V² − (2·k·Vth + f)·V + k·Vth² = 0
//
// whose larger root is the operating voltage (the smaller root lies below
// Vth and is non-physical). fGHz must be positive.
func (c Curve) VoltageFor(fGHz float64) (float64, error) {
	if fGHz <= 0 || math.IsNaN(fGHz) || math.IsInf(fGHz, 1) {
		return 0, fmt.Errorf("vf: VoltageFor(%g GHz): frequency must be positive and finite", fGHz)
	}
	a := c.K
	b := -(2*c.K*c.Vth + fGHz)
	cc := c.K * c.Vth * c.Vth
	disc := b*b - 4*a*cc
	if disc < 0 {
		return 0, fmt.Errorf("%w: %g GHz (negative discriminant)", ErrInfeasible, fGHz)
	}
	v := (-b + math.Sqrt(disc)) / (2 * a)
	if v <= c.Vth {
		return 0, fmt.Errorf("%w: %g GHz (root %.3f V below Vth)", ErrInfeasible, fGHz, v)
	}
	return v, nil
}

// Region classifies an operating voltage per Figure 2.
type Region int

const (
	// RegionNTC is near-threshold computing: Vdd below the STC floor.
	RegionNTC Region = iota
	// RegionSTC is the conventional super-threshold region, up to and
	// including the nominal voltage.
	RegionSTC
	// RegionBoost is above-nominal voltage (turbo operation).
	RegionBoost
)

// STCFloorVolts is the conventional lower bound of the super-threshold
// region; the paper notes "Vdd usually takes values above 0.6 V" for STC.
const STCFloorVolts = 0.6

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case RegionNTC:
		return "NTC"
	case RegionSTC:
		return "STC"
	case RegionBoost:
		return "Boost"
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// RegionOf classifies the supply voltage vdd.
func (c Curve) RegionOf(vdd float64) Region {
	switch {
	case vdd < STCFloorVolts:
		return RegionNTC
	case vdd <= c.VddNominal+1e-12:
		return RegionSTC
	default:
		return RegionBoost
	}
}

// OperatingPoint is a (frequency, minimum voltage) pair on the Eq.(2)
// curve, tagged with its region.
type OperatingPoint struct {
	FGHz   float64
	Vdd    float64
	Region Region
}

// PointAt returns the operating point for frequency fGHz.
func (c Curve) PointAt(fGHz float64) (OperatingPoint, error) {
	v, err := c.VoltageFor(fGHz)
	if err != nil {
		return OperatingPoint{}, err
	}
	return OperatingPoint{FGHz: fGHz, Vdd: v, Region: c.RegionOf(v)}, nil
}

// StepGHz is the DVFS / boosting frequency granularity used throughout the
// paper (§6: "the frequency on all cores is increased or decreased one
// step (200 MHz)").
const StepGHz = 0.2

// Ladder is an ascending list of discrete operating points.
type Ladder struct {
	Curve  Curve
	Points []OperatingPoint
}

// LadderOptions configures ladder generation.
type LadderOptions struct {
	// MinGHz is the lowest level; defaults to 0.4 GHz.
	MinGHz float64
	// MaxGHz is the highest level; defaults to the curve's FmaxGHz.
	// Set above FmaxGHz to include boost levels.
	MaxGHz float64
	// StepGHz defaults to StepGHz (0.2).
	StepGHz float64
}

// NewLadder builds the discrete DVFS ladder for the curve. Levels whose
// voltage solve fails are skipped (cannot happen for positive frequencies,
// but kept defensive).
func NewLadder(c Curve, opt LadderOptions) (*Ladder, error) {
	if opt.MinGHz == 0 {
		opt.MinGHz = 0.4
	}
	if opt.MaxGHz == 0 {
		opt.MaxGHz = c.FmaxGHz
	}
	if opt.StepGHz == 0 {
		opt.StepGHz = StepGHz
	}
	if opt.MinGHz <= 0 || opt.StepGHz <= 0 || opt.MaxGHz < opt.MinGHz {
		return nil, fmt.Errorf("vf: invalid ladder options %+v", opt)
	}
	var pts []OperatingPoint
	// Walk in integer steps to avoid floating-point drift in the level
	// values (2.8000000003 GHz would make table output ugly).
	n := int(math.Round((opt.MaxGHz - opt.MinGHz) / opt.StepGHz))
	for i := 0; i <= n; i++ {
		f := opt.MinGHz + float64(i)*opt.StepGHz
		f = math.Round(f*1000) / 1000
		if f > opt.MaxGHz+1e-9 {
			break
		}
		p, err := c.PointAt(f)
		if err != nil {
			continue
		}
		pts = append(pts, p)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("vf: empty ladder for options %+v", opt)
	}
	return &Ladder{Curve: c, Points: pts}, nil
}

// Levels returns the ladder's frequencies in GHz, ascending.
func (l *Ladder) Levels() []float64 {
	fs := make([]float64, len(l.Points))
	for i, p := range l.Points {
		fs[i] = p.FGHz
	}
	return fs
}

// Nearest returns the index of the ladder level closest to fGHz.
func (l *Ladder) Nearest(fGHz float64) int {
	best, bd := 0, math.Inf(1)
	for i, p := range l.Points {
		if d := math.Abs(p.FGHz - fGHz); d < bd {
			best, bd = i, d
		}
	}
	return best
}

// AtOrBelow returns the index of the highest level with frequency ≤ fGHz,
// or -1 when even the lowest level exceeds fGHz.
func (l *Ladder) AtOrBelow(fGHz float64) int {
	idx := -1
	for i, p := range l.Points {
		if p.FGHz <= fGHz+1e-9 {
			idx = i
		}
	}
	return idx
}

// Clamp returns i clamped to the valid level-index range.
func (l *Ladder) Clamp(i int) int {
	if i < 0 {
		return 0
	}
	if i >= len(l.Points) {
		return len(l.Points) - 1
	}
	return i
}
