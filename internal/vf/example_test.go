package vf_test

import (
	"fmt"

	"darksim/internal/tech"
	"darksim/internal/vf"
)

// ExampleCurve_VoltageFor shows the minimum-voltage pairing of Eq.(2):
// ask for a frequency, get the lowest supply voltage that sustains it.
func ExampleCurve_VoltageFor() {
	curve := vf.MustCurve(tech.Node16)
	v, err := curve.VoltageFor(3.6) // the 16 nm nominal maximum
	if err != nil {
		panic(err)
	}
	fmt.Printf("3.6 GHz needs %.2f V (%s region)\n", v, curve.RegionOf(v))
	// Output: 3.6 GHz needs 0.89 V (STC region)
}

// ExampleNewLadder builds the paper's 0.2 GHz DVFS ladder with boost
// levels above the nominal maximum.
func ExampleNewLadder() {
	curve := vf.MustCurve(tech.Node16)
	ladder, err := vf.NewLadder(curve, vf.LadderOptions{MinGHz: 3.0, MaxGHz: 4.0})
	if err != nil {
		panic(err)
	}
	for _, p := range ladder.Points {
		fmt.Printf("%.1f GHz @ %.2f V (%s)\n", p.FGHz, p.Vdd, p.Region)
	}
	// Output:
	// 3.0 GHz @ 0.79 V (STC)
	// 3.2 GHz @ 0.82 V (STC)
	// 3.4 GHz @ 0.86 V (STC)
	// 3.6 GHz @ 0.89 V (STC)
	// 3.8 GHz @ 0.92 V (Boost)
	// 4.0 GHz @ 0.96 V (Boost)
}
