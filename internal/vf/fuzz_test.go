package vf

import (
	"math"
	"testing"

	"darksim/internal/tech"
)

// FuzzVoltageForFrequency pins the Eq.(2) inverse: for any frequency the
// solver either errors cleanly or returns a voltage strictly above Vth
// that round-trips through FrequencyGHz within tolerance. This is the
// contract every ladder, DVFS controller and TSP budget in the repo rests
// on; a drifting k or Vth breaks it immediately.
func FuzzVoltageForFrequency(f *testing.F) {
	f.Add(0, 1.0)
	f.Add(1, 3.6)
	f.Add(2, 0.001)
	f.Add(3, 4.4)
	f.Add(0, -2.0)
	f.Add(1, math.Inf(1))
	f.Add(2, math.NaN())
	f.Fuzz(func(t *testing.T, nodeIdx int, fGHz float64) {
		nodes := tech.Nodes()
		if nodeIdx < 0 {
			nodeIdx = -nodeIdx
		}
		if nodeIdx < 0 { // math.MinInt negates to itself
			nodeIdx = 0
		}
		c, err := CurveFor(nodes[nodeIdx%len(nodes)])
		if err != nil {
			t.Fatalf("CurveFor: %v", err)
		}
		v, err := c.VoltageFor(fGHz)
		if err != nil {
			// Non-positive, NaN and infeasible frequencies must error,
			// never panic — and must not leak a voltage.
			if v != 0 {
				t.Errorf("VoltageFor(%g) errored but returned v=%g", fGHz, v)
			}
			return
		}
		if fGHz <= 0 || math.IsNaN(fGHz) {
			t.Fatalf("VoltageFor(%g) accepted a non-positive frequency (v=%g)", fGHz, v)
		}
		if v <= c.Vth {
			t.Fatalf("VoltageFor(%g) = %g V at or below Vth=%g V", fGHz, v, c.Vth)
		}
		// The quadratic loses precision once f·V overflows toward +Inf;
		// physical frequencies are single-digit GHz, so bound the
		// round-trip check far above any real operating point.
		if fGHz > 1e8 {
			return
		}
		back := c.FrequencyGHz(v)
		if diff := math.Abs(back - fGHz); diff > 1e-6*fGHz+1e-12 {
			t.Errorf("round-trip drift: f=%g GHz -> V=%g -> f=%g (diff %g)", fGHz, v, back, diff)
		}
	})
}
