package vf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"darksim/internal/tech"
)

func TestFrequencyMatchesPaperAnchors(t *testing.T) {
	// Figure 2 is drawn for 22 nm with k=3.7 and Vth=178 mV. Sanity-check
	// a literal evaluation of Eq.(2) at 1.0 V: 3.7·(0.822)²/1.0 ≈ 2.50 GHz.
	c := Curve{K: 3.7, Vth: 0.178, VddNominal: 1.0, FmaxGHz: 2.5}
	got := c.FrequencyGHz(1.0)
	if math.Abs(got-2.5) > 0.01 {
		t.Errorf("f(1.0V) = %v GHz, want ≈2.50", got)
	}
	if c.FrequencyGHz(0.178) != 0 || c.FrequencyGHz(0.1) != 0 {
		t.Errorf("f at/below Vth should be 0")
	}
}

func TestVoltageForRoundTrip(t *testing.T) {
	for _, n := range tech.Nodes() {
		c := MustCurve(n)
		for f := 0.2; f <= c.FmaxGHz+0.6; f += 0.1 {
			v, err := c.VoltageFor(f)
			if err != nil {
				t.Fatalf("%v: VoltageFor(%.1f): %v", n, f, err)
			}
			back := c.FrequencyGHz(v)
			if math.Abs(back-f) > 1e-9 {
				t.Fatalf("%v: round trip %.1f GHz -> %.4f V -> %.6f GHz", n, f, v, back)
			}
			if v <= c.Vth {
				t.Fatalf("%v: voltage %.3f below threshold", n, v)
			}
		}
	}
}

func TestVoltageForErrors(t *testing.T) {
	c := MustCurve(tech.Node22)
	if _, err := c.VoltageFor(0); err == nil {
		t.Errorf("zero frequency should error")
	}
	if _, err := c.VoltageFor(-1); err == nil {
		t.Errorf("negative frequency should error")
	}
}

func TestVoltageIsMinimal(t *testing.T) {
	// Any voltage slightly below the returned one must not sustain f.
	c := MustCurve(tech.Node16)
	for _, f := range []float64{1.0, 2.0, 3.0, 3.6} {
		v, err := c.VoltageFor(f)
		if err != nil {
			t.Fatal(err)
		}
		if c.FrequencyGHz(v-1e-4) >= f {
			t.Errorf("voltage %.4f for %.1f GHz is not minimal", v, f)
		}
	}
}

func TestNominalAnchors(t *testing.T) {
	// At the nominal voltage each node must reach exactly its nominal fmax.
	for _, n := range tech.Nodes() {
		c := MustCurve(n)
		got := c.FrequencyGHz(c.VddNominal)
		if math.Abs(got-c.FmaxGHz) > 1e-9 {
			t.Errorf("%v: f(Vnom) = %v, want %v", n, got, c.FmaxGHz)
		}
	}
}

func TestRegionClassification(t *testing.T) {
	c := MustCurve(tech.Node11) // VddNominal = 0.81
	cases := []struct {
		vdd  float64
		want Region
	}{
		{0.40, RegionNTC},
		{0.59, RegionNTC},
		{0.60, RegionSTC},
		{0.81, RegionSTC},
		{0.90, RegionBoost},
	}
	for _, cse := range cases {
		if got := c.RegionOf(cse.vdd); got != cse.want {
			t.Errorf("RegionOf(%.2f) = %v, want %v", cse.vdd, got, cse.want)
		}
	}
	if RegionNTC.String() != "NTC" || RegionSTC.String() != "STC" || RegionBoost.String() != "Boost" {
		t.Errorf("Region strings wrong")
	}
	if Region(9).String() == "" {
		t.Errorf("unknown region should still render")
	}
}

func TestNTCAnchorFromFig14(t *testing.T) {
	// Figure 14: at 11 nm, NTC instances run 1 GHz at 0.46 V. Our curve
	// should place ≈1 GHz within the NTC region near that voltage.
	c := MustCurve(tech.Node11)
	v, err := c.VoltageFor(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if c.RegionOf(v) != RegionNTC {
		t.Errorf("1 GHz at 11 nm should be NTC; got %.3f V (%v)", v, c.RegionOf(v))
	}
	if v < 0.3 || v > 0.6 {
		t.Errorf("1 GHz voltage = %.3f V, expected in [0.3, 0.6]", v)
	}
}

func TestPointAt(t *testing.T) {
	c := MustCurve(tech.Node16)
	p, err := c.PointAt(3.6)
	if err != nil {
		t.Fatal(err)
	}
	if p.Region != RegionSTC {
		t.Errorf("nominal point region = %v", p.Region)
	}
	pb, err := c.PointAt(4.2)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Region != RegionBoost {
		t.Errorf("4.2 GHz at 16 nm should be boost; got %v at %.3f V", pb.Region, pb.Vdd)
	}
	if _, err := c.PointAt(-2); err == nil {
		t.Errorf("negative frequency should error")
	}
}

func TestNewLadderDefaults(t *testing.T) {
	c := MustCurve(tech.Node16)
	l, err := NewLadder(c, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	levels := l.Levels()
	if levels[0] != 0.4 {
		t.Errorf("first level = %v, want 0.4", levels[0])
	}
	if last := levels[len(levels)-1]; last != 3.6 {
		t.Errorf("last level = %v, want 3.6", last)
	}
	for i := 1; i < len(levels); i++ {
		if math.Abs(levels[i]-levels[i-1]-0.2) > 1e-9 {
			t.Fatalf("non-uniform step between %v and %v", levels[i-1], levels[i])
		}
	}
	// Voltages strictly increasing with frequency.
	for i := 1; i < len(l.Points); i++ {
		if l.Points[i].Vdd <= l.Points[i-1].Vdd {
			t.Fatalf("voltage not increasing at level %d", i)
		}
	}
}

func TestNewLadderBoostLevels(t *testing.T) {
	c := MustCurve(tech.Node16)
	l, err := NewLadder(c, LadderOptions{MaxGHz: c.FmaxGHz + 0.6})
	if err != nil {
		t.Fatal(err)
	}
	top := l.Points[len(l.Points)-1]
	if top.Region != RegionBoost {
		t.Errorf("top level should be boost; got %v", top.Region)
	}
}

func TestNewLadderErrors(t *testing.T) {
	c := MustCurve(tech.Node22)
	if _, err := NewLadder(c, LadderOptions{MinGHz: -1}); err == nil {
		t.Errorf("negative MinGHz should error")
	}
	if _, err := NewLadder(c, LadderOptions{MinGHz: 3, MaxGHz: 1}); err == nil {
		t.Errorf("inverted range should error")
	}
	if _, err := NewLadder(c, LadderOptions{StepGHz: -0.2}); err == nil {
		t.Errorf("negative step should error")
	}
}

func TestLadderLookups(t *testing.T) {
	c := MustCurve(tech.Node16)
	l, err := NewLadder(c, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if i := l.Nearest(2.95); math.Abs(l.Points[i].FGHz-3.0) > 1e-9 {
		t.Errorf("Nearest(2.95) = %v", l.Points[i].FGHz)
	}
	if i := l.AtOrBelow(2.95); math.Abs(l.Points[i].FGHz-2.8) > 1e-9 {
		t.Errorf("AtOrBelow(2.95) = %v", l.Points[i].FGHz)
	}
	if i := l.AtOrBelow(3.0); math.Abs(l.Points[i].FGHz-3.0) > 1e-9 {
		t.Errorf("AtOrBelow(3.0) = %v", l.Points[i].FGHz)
	}
	if i := l.AtOrBelow(0.1); i != -1 {
		t.Errorf("AtOrBelow below ladder = %d, want -1", i)
	}
	if l.Clamp(-3) != 0 || l.Clamp(999) != len(l.Points)-1 || l.Clamp(2) != 2 {
		t.Errorf("Clamp misbehaves")
	}
}

func TestCurveForUnknownNode(t *testing.T) {
	if _, err := CurveFor(tech.Node(10)); err == nil {
		t.Errorf("unknown node should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("MustCurve should panic")
		}
	}()
	MustCurve(tech.Node(10))
}

// Property: Eq.(2) is monotonically increasing in Vdd above Vth, so the
// frequency of a higher voltage is never lower.
func TestFrequencyMonotoneProperty(t *testing.T) {
	c := MustCurve(tech.Node22)
	f := func(a, b float64) bool {
		// Map inputs into (Vth, 1.6].
		va := c.Vth + math.Mod(math.Abs(a), 1.4) + 1e-6
		vb := c.Vth + math.Mod(math.Abs(b), 1.4) + 1e-6
		lo, hi := math.Min(va, vb), math.Max(va, vb)
		return c.FrequencyGHz(lo) <= c.FrequencyGHz(hi)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: VoltageFor ∘ FrequencyGHz is the identity on frequencies.
func TestInverseProperty(t *testing.T) {
	c := MustCurve(tech.Node8)
	f := func(x float64) bool {
		fGHz := 0.05 + math.Mod(math.Abs(x), 5.5)
		v, err := c.VoltageFor(fGHz)
		if err != nil {
			return false
		}
		return math.Abs(c.FrequencyGHz(v)-fGHz) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}
