package service

import (
	"container/list"
	"sync"
	"time"
)

// cacheEntry is one cached result with its expiry deadline.
type cacheEntry struct {
	key     string
	res     *Result
	expires time.Time
}

// resultCache is a bounded LRU with per-entry TTL. Results are expensive
// (a figure can take minutes of Cholesky-backed simulation) and immutable
// once computed, so a small cache absorbs most of a hot figure's traffic.
type resultCache struct {
	mu      sync.Mutex
	cap     int           // max entries; <= 0 disables caching
	ttl     time.Duration // <= 0 means entries never expire
	now     func() time.Time
	ll      *list.List // front = most recently used; values are *cacheEntry
	items   map[string]*list.Element
	metrics *Metrics
}

func newResultCache(capacity int, ttl time.Duration, now func() time.Time, m *Metrics) *resultCache {
	return &resultCache{
		cap:     capacity,
		ttl:     ttl,
		now:     now,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		metrics: m,
	}
}

// get returns the live cached result for key, removing it if expired.
func (c *resultCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(el)
		c.metrics.CacheExpired.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e.res, true
}

// put stores the result, evicting the least recently used entry beyond
// the capacity.
func (c *resultCache) put(key string, res *Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		e.res, e.expires = res, expires
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, res: res, expires: expires})
	c.items[key] = el
	for c.ll.Len() > c.cap {
		c.removeLocked(c.ll.Back())
		c.metrics.CacheEvictions.Add(1)
	}
}

// len reports the current number of entries (including not-yet-reaped
// expired ones).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *resultCache) removeLocked(el *list.Element) {
	delete(c.items, el.Value.(*cacheEntry).key)
	c.ll.Remove(el)
}
