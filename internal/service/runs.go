package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"darksim/internal/jobs"
	"darksim/internal/policy"
	"darksim/internal/progress"
	"darksim/internal/report"
	"darksim/internal/scenario"
)

// runRequest is the POST /v1/runs body: exactly one of Experiment (with
// an optional Duration override for the transient figures), Scenario
// (an inline spec, as POST /v1/scenarios accepts) or Policy (a sandbox
// spec, as POST /v1/policies accepts — the natural home for long tuning
// runs, whose per-policy frontier fragments stream as run events).
type runRequest struct {
	Experiment string          `json:"experiment,omitempty"`
	Duration   float64         `json:"duration,omitempty"`
	Scenario   json.RawMessage `json:"scenario,omitempty"`
	Policy     json.RawMessage `json:"policy,omitempty"`
}

// runResponse is a run snapshot plus whether this submission joined an
// already-live run for the same content key instead of starting one.
type runResponse struct {
	jobs.Run
	Deduped bool `json:"deduped"`
}

// handleRunSubmit accepts a computation for asynchronous execution and
// returns 202 with the run snapshot immediately. Submissions dedupe on
// the same content key the synchronous cache uses, so two concurrent
// identical POSTs share one RunID and one computation. A full queue is
// backpressure: 429 with a Retry-After hint.
func (s *Server) handleRunSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading run request: %w", err))
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("run request exceeds %d bytes", maxSpecBytes))
		return
	}
	var req runRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing run request: %w", err))
		return
	}
	targets := 0
	for _, set := range []bool{req.Experiment != "", len(req.Scenario) > 0, len(req.Policy) > 0} {
		if set {
			targets++
		}
	}
	if targets != 1 {
		writeError(w, http.StatusBadRequest,
			errors.New(`run request must name exactly one of "experiment", "scenario" or "policy"`))
		return
	}
	if req.Duration != 0 && (req.Duration < 0 || math.IsInf(req.Duration, 0) || math.IsNaN(req.Duration)) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("invalid duration %v: want a positive number of seconds", req.Duration))
		return
	}

	var kind, label, key string
	var params map[string]string
	var fn computeFn
	switch {
	case req.Experiment != "":
		kind, label = "experiment", req.Experiment
		key, params, fn, err = s.experimentCompute(req.Experiment, req.Duration)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, errUnknownExperiment) {
				status = http.StatusNotFound
			}
			writeError(w, status, err)
			return
		}
	case len(req.Scenario) > 0:
		if req.Duration != 0 {
			writeError(w, http.StatusBadRequest,
				errors.New("duration applies to experiment runs, not scenarios"))
			return
		}
		spec, perr := scenario.Parse(req.Scenario)
		if perr != nil {
			writeError(w, http.StatusBadRequest, perr)
			return
		}
		key, params, fn, err = scenarioCompute(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		kind, label = "scenario", spec.Name
		if label == "" {
			label = params["hash"][:12]
		}
	default:
		if req.Duration != 0 {
			writeError(w, http.StatusBadRequest,
				errors.New("duration applies to experiment runs, not policy specs (set duration_s in the spec)"))
			return
		}
		spec, perr := policy.Parse(req.Policy)
		if perr != nil {
			writeError(w, http.StatusBadRequest, perr)
			return
		}
		key, params, fn, err = policyCompute(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		kind, label = "policy", spec.Name
		if label == "" {
			label = params["hash"][:12]
		}
	}

	run, joined, err := s.runs.Submit(kind, label, key, params, s.runJob(key, label, params, fn))
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.writeRetryError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, jobs.ErrClosed):
		s.writeRetryError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, runResponse{Run: run, Deduped: joined})
}

// runJob adapts a compute closure into a jobs.Job: a progress sink on
// the context forwards each completed point to the run's event log, and
// a successful result is written through to the synchronous result cache
// so later GETs for the same key are served without recomputing. Runs
// never read that cache — a submission is an explicit request to compute.
func (s *Server) runJob(key, id string, params map[string]string, fn computeFn) jobs.Job {
	return func(ctx context.Context, emit jobs.EmitFunc) ([]*report.Table, error) {
		ctx = progress.With(ctx, func(p progress.Point) { emit(p.Table, p.Done, p.Total) })
		start := s.cfg.Now()
		tables, err := fn(ctx)
		if err != nil {
			return nil, err
		}
		s.cache.put(key, &Result{
			ID:         id,
			Params:     params,
			Tables:     tables,
			ComputedAt: start,
			ElapsedMS:  float64(s.cfg.Now().Sub(start)) / float64(time.Millisecond),
		})
		return tables, nil
	}
}

// handleRunList lists every known run, oldest first; ?kind= restricts
// the listing to one submission kind (experiment, scenario, policy).
func (s *Server) handleRunList(w http.ResponseWriter, r *http.Request) {
	if err := allowParams(r, "kind"); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.runs.ListKind(r.URL.Query().Get("kind")))
}

// handleRunGet returns one run's snapshot (terminal snapshots include
// the full result tables).
func (s *Server) handleRunGet(w http.ResponseWriter, r *http.Request) {
	if err := allowParams(r); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	run, ok := s.runs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", jobs.ErrNotFound, r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, run)
}

// handleRunCancel requests cooperative cancellation: queued runs are
// cancelled immediately, running runs when their job observes the
// context. The response is the snapshot after the request was applied.
func (s *Server) handleRunCancel(w http.ResponseWriter, r *http.Request) {
	run, err := s.runs.Cancel(r.PathValue("id"))
	if errors.Is(err, jobs.ErrNotFound) {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", err, r.PathValue("id")))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, run)
}

// handleRunEvents streams a run's event log as Server-Sent Events: the
// persisted backlog first, then live events, ending after the terminal
// event. Each frame's SSE id is the event's sequence number, so a client
// that reconnects with Last-Event-ID (or ?after=N) replays exactly what
// it missed, byte-identically — the store is append-only and the framing
// deterministic.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	if err := allowParams(r, "after"); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	after := int64(0)
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("after")
	}
	if v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("invalid resume sequence %q: want a non-negative integer", v))
			return
		}
		after = n
	}
	replay, live, stop, err := s.runs.Subscribe(r.PathValue("id"), after)
	if errors.Is(err, jobs.ErrNotFound) || errors.Is(err, jobs.ErrNoRun) {
		writeError(w, http.StatusNotFound, fmt.Errorf("jobs: run not found: %s", r.PathValue("id")))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	defer stop()
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for _, ev := range replay {
		if writeSSE(w, ev) != nil {
			return
		}
	}
	if err := rc.Flush(); err != nil {
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				// Terminal event delivered (or the subscriber fell too far
				// behind and was disconnected; it reconnects with its last
				// seen id).
				return
			}
			if writeSSE(w, ev) != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE frames one run event: the sequence number as the SSE id (what
// a reconnecting client echoes back as Last-Event-ID), the run event
// type as the SSE event name, and the event's JSON as the data line.
func writeSSE(w io.Writer, ev jobs.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

// writeRetryError writes an error with a Retry-After hint so
// well-behaved clients back off instead of hammering a saturated or
// draining server.
func (s *Server) writeRetryError(w http.ResponseWriter, status int, err error) {
	secs := int(math.Ceil(s.cfg.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, status, err)
}
