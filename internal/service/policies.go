package service

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"darksim/internal/policy"
	"darksim/internal/report"
)

// handlePolicyPost races a policy-sandbox spec from the request body.
// Like POST /v1/scenarios, the cache key is the spec's content hash, so
// renamed or reordered specs for the same evaluation hit the same cache
// entry and coalesce onto the same in-flight sandbox run. Tuning runs
// ride the same pipeline; long tunes are better submitted through
// POST /v1/runs with a "policy" body, which streams frontier fragments.
func (s *Server) handlePolicyPost(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading policy spec body: %w", err))
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("policy spec body exceeds %d bytes", maxSpecBytes))
		return
	}
	spec, err := policy.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, params, fn, err := policyCompute(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveResult(w, r, key, "policy", params, fn)
}

// policyCompute resolves a policy spec into its content-hash cache key,
// response params, and sandbox-execution closure — shared by
// POST /v1/policies and POST /v1/runs, so an async policy run dedupes
// and caches exactly like the synchronous request.
func policyCompute(spec policy.Spec) (string, map[string]string, computeFn, error) {
	hash, err := policy.Hash(spec)
	if err != nil {
		return "", nil, nil, err
	}
	params := map[string]string{"hash": hash}
	if spec.Name != "" {
		params["name"] = spec.Name
	}
	fn := func(ctx context.Context) ([]*report.Table, error) {
		res, err := policy.Execute(ctx, spec)
		if err != nil {
			return nil, err
		}
		return res.Tables(), nil
	}
	return "policy:" + hash, params, fn, nil
}
