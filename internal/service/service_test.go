package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darksim/internal/experiments"
	"darksim/internal/report"
)

// fakeResult is a canned experiment result implementing Renderer+Tabler.
type fakeResult struct{ tables []*report.Table }

func (r *fakeResult) Render(w io.Writer) error { return nil }

func (r *fakeResult) Tables() []*report.Table { return r.tables }

func oneTable(title string) []*report.Table {
	return []*report.Table{{Title: title, Columns: []string{"v"}, Rows: [][]string{{"42"}}}}
}

// fakeExp builds a registry entry whose computation increments computes
// and then blocks on gate (nil gate = return immediately).
func fakeExp(id string, computes *atomic.Int64, gate chan struct{}) experiments.Experiment {
	return experiments.Experiment{
		ID:          id,
		Description: "test experiment " + id,
		Run: func(ctx context.Context) (experiments.Renderer, error) {
			computes.Add(1)
			if gate != nil {
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return &fakeResult{tables: oneTable(id)}, nil
		},
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func decodeResult(t *testing.T, body string) resultResponse {
	t.Helper()
	var rr resultResponse
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatalf("decode %q: %v", body, err)
	}
	return rr
}

func TestListExperiments(t *testing.T) {
	s := New(Config{}, nil) // full registry incl. ablations
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body, _ := get(t, ts, "/v1/experiments")
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	var list []experimentInfo
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, e := range list {
		ids[e.ID] = true
		if e.Description == "" {
			t.Errorf("%s: empty description", e.ID)
		}
	}
	for _, want := range []string{"fig1", "fig14", "ab-grid"} {
		if !ids[want] {
			t.Errorf("listing is missing %s", want)
		}
	}
}

func TestParamValidationAndNotFound(t *testing.T) {
	var computes atomic.Int64
	s := New(Config{}, []experiments.Experiment{fakeExp("figx", &computes, nil)})
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		path string
		code int
		frag string
	}{
		{"/v1/experiments/nope", http.StatusNotFound, "unknown experiment"},
		{"/v1/experiments/figx?bogus=1", http.StatusBadRequest, "unknown parameter"},
		{"/v1/experiments/figx?duration=abc", http.StatusBadRequest, "invalid duration"},
		{"/v1/experiments/figx?duration=-3", http.StatusBadRequest, "invalid duration"},
		{"/v1/experiments/figx?duration=5", http.StatusBadRequest, "transient"},
		{"/v1/tsp?node=7&active=1", http.StatusBadRequest, "invalid node"},
		{"/v1/tsp?node=16&active=0", http.StatusBadRequest, "invalid active"},
		{"/v1/tsp?node=16&active=999", http.StatusBadRequest, "invalid active"},
		{"/v1/tsp?node=16&active=10&junk=1", http.StatusBadRequest, "unknown parameter"},
		{"/v1/tsp", http.StatusBadRequest, "invalid active"},
	}
	for _, tc := range cases {
		code, body, _ := get(t, ts, tc.path)
		if code != tc.code {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.path, code, tc.code, body)
		}
		if !strings.Contains(body, tc.frag) {
			t.Errorf("%s: body %q missing %q", tc.path, body, tc.frag)
		}
	}
	if n := computes.Load(); n != 0 {
		t.Errorf("rejected requests must not compute (computes = %d)", n)
	}
}

func TestFig1JSONRoundTrip(t *testing.T) {
	s := New(Config{}, nil)
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body, hdr := get(t, ts, "/v1/experiments/fig1")
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	if got := hdr.Get(cacheHeader); got != "miss" {
		t.Errorf("first request cache header = %q, want miss", got)
	}
	rr := decodeResult(t, body)
	if rr.ID != "fig1" || rr.Cache != "miss" {
		t.Errorf("id/cache = %q/%q", rr.ID, rr.Cache)
	}

	// The served tables must round-trip to exactly what the CLI's
	// structured output produces for the same figure.
	e, err := experiments.ByID("fig1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, ok := experiments.TablesOf(res)
	if !ok {
		t.Fatal("fig1 has no structured output")
	}
	if len(rr.Tables) != len(want) {
		t.Fatalf("tables = %d, want %d", len(rr.Tables), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(rr.Tables[i].Columns, want[i].Columns) {
			t.Errorf("table %d columns differ: %v vs %v", i, rr.Tables[i].Columns, want[i].Columns)
		}
		if !reflect.DeepEqual(rr.Tables[i].Rows, want[i].Rows) {
			t.Errorf("table %d rows differ", i)
		}
	}
}

func TestCoalescingOneComputeForConcurrentRequests(t *testing.T) {
	const waiters = 8
	var computes atomic.Int64
	gate := make(chan struct{})
	s := New(Config{Workers: 2}, []experiments.Experiment{fakeExp("figx", &computes, gate)})
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	type reply struct {
		code   int
		source string
		body   string
	}
	replies := make(chan reply, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body, hdr := get(t, ts, "/v1/experiments/figx")
			replies <- reply{code, hdr.Get(cacheHeader), body}
		}()
	}
	// Hold the gate until every follower has joined the leader's flight,
	// so none of them can race past to a cache hit.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Coalesced.Load() < waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d coalesced waiters after 10s", s.Metrics().Coalesced.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(replies)

	if n := computes.Load(); n != 1 {
		t.Errorf("computes = %d, want exactly 1 for %d concurrent requests", n, waiters)
	}
	sources := map[string]int{}
	for r := range replies {
		if r.code != http.StatusOK {
			t.Errorf("status = %d, body %s", r.code, r.body)
		}
		rr := decodeResult(t, r.body)
		if len(rr.Tables) != 1 || rr.Tables[0].Rows[0][0] != "42" {
			t.Errorf("waiter got wrong payload: %s", r.body)
		}
		sources[r.source]++
	}
	if sources["miss"] != 1 || sources["coalesced"] != waiters-1 {
		t.Errorf("sources = %v, want 1 miss and %d coalesced", sources, waiters-1)
	}
}

func TestCacheHitAndMetrics(t *testing.T) {
	var computes atomic.Int64
	s := New(Config{}, []experiments.Experiment{fakeExp("figx", &computes, nil)})
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	if code, body, _ := get(t, ts, "/v1/experiments/figx"); code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	code, body, hdr := get(t, ts, "/v1/experiments/figx")
	if code != http.StatusOK || hdr.Get(cacheHeader) != "hit" {
		t.Fatalf("repeat: status %d header %q", code, hdr.Get(cacheHeader))
	}
	if rr := decodeResult(t, body); rr.Cache != "hit" {
		t.Errorf("cache field = %q, want hit", rr.Cache)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("computes = %d, want 1 (second request served from cache)", n)
	}

	code, body, _ = get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", snap.Cache.Hits, snap.Cache.Misses)
	}
	if snap.Compute.Count != 1 || snap.Cache.Size != 1 {
		t.Errorf("compute count = %d cache size = %d, want 1/1", snap.Compute.Count, snap.Cache.Size)
	}
	if snap.Requests < 3 {
		t.Errorf("requests = %d, want >= 3", snap.Requests)
	}
	var total int64
	for _, b := range snap.Compute.LatencyMS {
		total += b.Count
	}
	if total != 1 {
		t.Errorf("latency histogram counts %d observations, want 1", total)
	}
}

func TestCacheEvictionAndTTL(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	var ca, cb atomic.Int64
	s := New(Config{CacheSize: 1, CacheTTL: time.Minute, Now: clock},
		[]experiments.Experiment{fakeExp("figa", &ca, nil), fakeExp("figb", &cb, nil)})
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	mustGet := func(path, wantSource string) {
		t.Helper()
		code, body, hdr := get(t, ts, path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d body %s", path, code, body)
		}
		if got := hdr.Get(cacheHeader); got != wantSource {
			t.Fatalf("%s: source = %q, want %q", path, got, wantSource)
		}
	}

	mustGet("/v1/experiments/figa", "miss")
	mustGet("/v1/experiments/figa", "hit")
	// figb displaces figa from the one-slot cache.
	mustGet("/v1/experiments/figb", "miss")
	mustGet("/v1/experiments/figa", "miss")
	if ca.Load() != 2 {
		t.Errorf("figa computed %d times, want 2 (evicted by figb)", ca.Load())
	}
	if s.Metrics().CacheEvictions.Load() == 0 {
		t.Errorf("evictions not counted")
	}

	// TTL: a cached entry dies after CacheTTL on the fake clock.
	mustGet("/v1/experiments/figa", "hit")
	advance(2 * time.Minute)
	mustGet("/v1/experiments/figa", "miss")
	if s.Metrics().CacheExpired.Load() == 0 {
		t.Errorf("expiry not counted")
	}
}

func TestTSPEndpoint(t *testing.T) {
	s := New(Config{}, nil)
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body, _ := get(t, ts, "/v1/tsp?node=16nm&active=40")
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	rr := decodeResult(t, body)
	if rr.ID != "tsp" || len(rr.Tables) != 1 {
		t.Fatalf("unexpected payload: %s", body)
	}
	tbl := rr.Tables[0]
	if !strings.Contains(tbl.Title, "TSP") || !strings.Contains(tbl.Title, "16nm") {
		t.Errorf("title = %q", tbl.Title)
	}
	if rr.Params["cores"] != "100" {
		t.Errorf("default cores = %q, want 100 (16nm platform)", rr.Params["cores"])
	}
	if len(tbl.Notes) == 0 || !strings.Contains(tbl.Notes[0], "80") {
		t.Errorf("notes should state the 80 °C TDTM: %v", tbl.Notes)
	}
	// Same query again is a cache hit.
	_, _, hdr := get(t, ts, "/v1/tsp?node=16nm&active=40")
	if hdr.Get(cacheHeader) != "hit" {
		t.Errorf("repeat TSP query should hit the cache")
	}
}

func TestHealthz(t *testing.T) {
	s := New(Config{}, nil)
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body, _ := get(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Errorf("healthz: %d %s", code, body)
	}
}

func TestGracefulCloseDrainsAndRejects(t *testing.T) {
	var computes atomic.Int64
	gate := make(chan struct{})
	s := New(Config{Workers: 2}, []experiments.Experiment{
		fakeExp("figslow", &computes, gate),
		fakeExp("figother", &computes, nil),
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Start a slow computation, then begin draining while it runs.
	type reply struct {
		code   int
		source string
	}
	inflight := make(chan reply, 1)
	go func() {
		code, _, hdr := get(t, ts, "/v1/experiments/figslow")
		inflight <- reply{code, hdr.Get(cacheHeader)}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for computes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("compute never started")
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan error, 1)
	go func() { closed <- s.Close(context.Background()) }()
	// Give Close a moment to flip the draining flag.
	for {
		if code, body, _ := get(t, ts, "/v1/experiments/figother"); code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "shutting down") {
				t.Errorf("drain error body: %s", body)
			}
			break
		} else if code == http.StatusOK {
			// Raced ahead of the flag; retry until the drain is visible.
			if time.Now().After(deadline) {
				t.Fatal("new work still accepted after Close")
			}
			time.Sleep(time.Millisecond)
			continue
		} else {
			t.Fatalf("unexpected status during drain")
		}
	}

	// The in-flight computation is drained to completion, not dropped.
	close(gate)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := <-inflight
	if r.code != http.StatusOK || r.source != "miss" {
		t.Errorf("in-flight request: code %d source %q, want 200 miss", r.code, r.source)
	}

	// Cached results keep being served after the drain.
	code, _, hdr := get(t, ts, "/v1/experiments/figslow")
	if code != http.StatusOK || hdr.Get(cacheHeader) != "hit" {
		t.Errorf("cached result after Close: code %d source %q", code, hdr.Get(cacheHeader))
	}
}

func TestComputeTimeoutMapsTo504(t *testing.T) {
	var computes atomic.Int64
	s := New(Config{ComputeTimeout: 20 * time.Millisecond},
		[]experiments.Experiment{fakeExp("fighang", &computes, make(chan struct{}))})
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body, _ := get(t, ts, "/v1/experiments/fighang")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", code, body)
	}
	if !strings.Contains(body, "fighang") {
		t.Errorf("timeout error should name the experiment: %s", body)
	}
	if s.Metrics().ComputeErrors.Load() != 1 {
		t.Errorf("compute errors = %d, want 1", s.Metrics().ComputeErrors.Load())
	}
}

func TestComputeErrorNotCached(t *testing.T) {
	var n atomic.Int64
	exp := experiments.Experiment{
		ID:          "figflaky",
		Description: "fails once",
		Run: func(ctx context.Context) (experiments.Renderer, error) {
			if n.Add(1) == 1 {
				return nil, fmt.Errorf("transient failure")
			}
			return &fakeResult{tables: oneTable("figflaky")}, nil
		},
	}
	s := New(Config{}, []experiments.Experiment{exp})
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	if code, _, _ := get(t, ts, "/v1/experiments/figflaky"); code != http.StatusInternalServerError {
		t.Fatalf("first request: status %d, want 500", code)
	}
	code, _, _ := get(t, ts, "/v1/experiments/figflaky")
	if code != http.StatusOK {
		t.Fatalf("second request: status %d, want 200 (errors must not be cached)", code)
	}
}

// TestCloseDuringCoalescedInflight pins the drain contract when several
// requests are coalesced onto one in-flight computation as Close begins:
// every waiter gets the completed result, the drain waits for the flight,
// and requests arriving after the drain are rejected.
func TestCloseDuringCoalescedInflight(t *testing.T) {
	var computes atomic.Int64
	gate := make(chan struct{})
	s := New(Config{Workers: 2}, []experiments.Experiment{
		fakeExp("figslow", &computes, gate),
		fakeExp("figprobe", &computes, nil),
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const waiters = 4
	type reply struct {
		code   int
		source string
	}
	replies := make(chan reply, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			code, _, hdr := get(t, ts, "/v1/experiments/figslow")
			replies <- reply{code, hdr.Get(cacheHeader)}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for computes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("compute never started")
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan error, 1)
	go func() { closed <- s.Close(context.Background()) }()
	// Close must drain, not drop: while the flight is gated it cannot
	// return.
	select {
	case err := <-closed:
		t.Fatalf("Close returned before the in-flight computation finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Release the flight: every coalesced waiter must complete with 200.
	close(gate)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}

	// With the drain complete, uncached requests are rejected.
	if code, body, _ := get(t, ts, "/v1/experiments/figprobe"); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain request: status %d body %s, want 503", code, body)
	}
	sources := map[string]int{}
	for i := 0; i < waiters; i++ {
		r := <-replies
		if r.code != http.StatusOK {
			t.Errorf("waiter got status %d, want 200", r.code)
		}
		sources[r.source]++
	}
	if sources["miss"] != 1 || sources["miss"]+sources["coalesced"] != waiters {
		t.Errorf("cache sources = %v, want 1 miss and %d coalesced", sources, waiters-1)
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("computes = %d, want 1 (coalesced)", got)
	}
}

// TestErrOptionsMapsTo400 pins the error mapping for a valid experiment
// name whose option combination the experiment itself rejects: the
// ErrOptions sentinel must surface as 400, not 500.
func TestErrOptionsMapsTo400(t *testing.T) {
	exp := experiments.Experiment{
		ID:          "figopt",
		Description: "always rejects its options",
		Run: func(ctx context.Context) (experiments.Renderer, error) {
			return nil, fmt.Errorf("%w: figopt: 0 instances", experiments.ErrOptions)
		},
	}
	s := New(Config{}, []experiments.Experiment{exp})
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body, _ := get(t, ts, "/v1/experiments/figopt")
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", code, body)
	}
	if !strings.Contains(body, "invalid options") {
		t.Errorf("error body should carry the options error: %s", body)
	}
	if s.Metrics().ComputeErrors.Load() != 1 {
		t.Errorf("compute errors = %d, want 1", s.Metrics().ComputeErrors.Load())
	}

	// A duration override on a non-transient figure is the same class of
	// client error and must also be 400.
	code, body, _ = get(t, ts, "/v1/experiments/figopt?duration=5")
	if code != http.StatusBadRequest || !strings.Contains(body, "transient") {
		t.Errorf("duration on non-transient: status %d body %s, want 400", code, body)
	}
}

// TestTSPCoresBounded pins the /v1/tsp request-size guard: the influence
// matrix still grows quadratically with cores, so the endpoint must
// reject sizes above maxTSPCores as a client error instead of building
// them.
func TestTSPCoresBounded(t *testing.T) {
	s := New(Config{}, nil)
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body, _ := get(t, ts, "/v1/tsp?node=16nm&cores=1000000&active=1")
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", code, body)
	}
	if !strings.Contains(body, "4096") {
		t.Errorf("error should state the bound: %s", body)
	}
	if code, _, _ := get(t, ts, "/v1/tsp?node=16nm&cores=0&active=1"); code != http.StatusBadRequest {
		t.Errorf("cores=0: status %d, want 400", code)
	}
}
