// Package service is the HTTP serving layer of darksim: a JSON API over
// every registered experiment and direct TSP queries, designed for many
// concurrent clients in front of computations that each cost seconds to
// minutes of Cholesky-backed simulation.
//
// Three mechanisms keep the expensive core safe under load:
//
//   - request coalescing (singleflight): N concurrent requests for the
//     same figure trigger exactly one computation, and every waiter gets
//     the one result;
//   - a bounded LRU result cache with TTL, so repeated requests are
//     served without recomputing;
//   - a bounded compute pool (internal/runner) with per-compute timeouts
//     propagated via context into experiments.Run, drained gracefully on
//     shutdown.
//
// Observability: /healthz, /metrics (expvar-style counters and a compute
// latency histogram) and structured request logs via log/slog.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"darksim/internal/experiments"
	"darksim/internal/jobs"
	"darksim/internal/policy"
	"darksim/internal/report"
	"darksim/internal/runner"
	"darksim/internal/scenario"
	"darksim/internal/tech"
	"darksim/internal/tsp"
)

// ErrDraining is returned for computations requested after Close began.
var ErrDraining = errors.New("service: shutting down")

// cacheHeader tells clients (and the request log) how the response was
// produced: "hit", "miss" (this request computed it) or "coalesced"
// (this request joined another request's computation).
const cacheHeader = "X-Darksim-Cache"

// Config parameterizes a Server. Zero values select the defaults.
type Config struct {
	// ComputeTimeout bounds one experiment computation (default 10m).
	ComputeTimeout time.Duration
	// CacheSize is the max number of cached results (default 64).
	CacheSize int
	// CacheTTL is the lifetime of a cached result (default 1h).
	CacheTTL time.Duration
	// Workers bounds concurrently running computations (default
	// runner.DefaultWorkers()).
	Workers int
	// QueueSize bounds asynchronous runs waiting for a compute slot
	// (default 64); a full queue rejects POST /v1/runs with 429.
	QueueSize int
	// RunStore persists run history across restarts (e.g. a
	// jobs.FileStore); nil keeps runs in memory only.
	RunStore jobs.Store
	// RetryAfter is the backoff hint attached to 429 and drain 503
	// responses (default 5s).
	RetryAfter time.Duration
	// Logger receives structured request logs; nil disables logging.
	Logger *slog.Logger
	// Now is the clock (for tests); nil means time.Now.
	Now func() time.Time
}

// computeFn produces one request key's result tables; it is the unit
// both the synchronous do pipeline and the asynchronous run runtime
// execute, which is what guarantees a run's terminal result is identical
// to the synchronous response for the same key.
type computeFn func(ctx context.Context) ([]*report.Table, error)

// Result is the computed payload for one request key, as served to
// clients and stored in the cache.
type Result struct {
	ID         string            `json:"id"`
	Params     map[string]string `json:"params,omitempty"`
	Tables     []*report.Table   `json:"tables"`
	ComputedAt time.Time         `json:"computed_at"`
	ElapsedMS  float64           `json:"elapsed_ms"`
}

// resultResponse wraps a Result with how it was obtained.
type resultResponse struct {
	*Result
	Cache string `json:"cache"` // hit | miss | coalesced
}

// experimentInfo is one row of the /v1/experiments listing.
type experimentInfo struct {
	ID          string `json:"id"`
	Description string `json:"description"`
}

// Server is the darksimd HTTP handler. Create with New, serve with
// net/http, stop with Close.
type Server struct {
	cfg     Config
	log     *slog.Logger
	mux     *http.ServeMux
	exps    map[string]experiments.Experiment
	order   []experimentInfo
	cache   *resultCache
	flights flightGroup
	metrics *Metrics
	pool    *runner.Group
	runs    *jobs.Manager
	stop    context.CancelFunc
	start   time.Time

	drainMu  chan struct{} // 1-slot semaphore guarding closed
	closed   bool
	inflight chan struct{} // counts computations; see beginCompute
	pending  int
	idle     chan struct{} // closed... (see drain)
}

// New builds a Server over the given experiments; nil means every
// registered figure plus the ablation studies.
func New(cfg Config, exps []experiments.Experiment) *Server {
	if cfg.ComputeTimeout <= 0 {
		cfg.ComputeTimeout = 10 * time.Minute
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 64
	}
	if cfg.CacheTTL == 0 {
		cfg.CacheTTL = time.Hour
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runner.DefaultWorkers()
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	if exps == nil {
		exps = append(experiments.Registry(), experiments.AblationRegistry()...)
	}
	baseCtx, stop := context.WithCancel(context.Background())
	pool, _ := runner.WithContext(baseCtx, cfg.Workers)
	s := &Server{
		cfg:     cfg,
		log:     log,
		mux:     http.NewServeMux(),
		exps:    make(map[string]experiments.Experiment, len(exps)),
		metrics: &Metrics{},
		pool:    pool,
		stop:    stop,
		start:   cfg.Now(),
		drainMu: make(chan struct{}, 1),
	}
	s.cache = newResultCache(cfg.CacheSize, cfg.CacheTTL, cfg.Now, s.metrics)
	for _, e := range exps {
		s.exps[e.ID] = e
		s.order = append(s.order, experimentInfo{ID: e.ID, Description: e.Description})
	}
	runsCfg := jobs.Config{
		Store:     cfg.RunStore,
		Pool:      pool,
		QueueSize: cfg.QueueSize,
		Timeout:   cfg.ComputeTimeout,
		Logger:    log,
		Now:       cfg.Now,
	}
	mgr, err := jobs.New(runsCfg)
	if err != nil {
		// The store replay is done by OpenFileStore before it reaches us;
		// an error here means a store that lies about its own history.
		// Serve with in-memory runs rather than refuse to start.
		log.Error("run store unusable; falling back to in-memory runs", "err", err)
		runsCfg.Store = nil
		mgr, _ = jobs.New(runsCfg)
	}
	s.runs = mgr
	s.mux.HandleFunc("GET /v1/experiments", s.handleList)
	s.mux.HandleFunc("GET /v1/experiments/{name}", s.handleExperiment)
	s.mux.HandleFunc("GET /v1/tsp", s.handleTSP)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarioList)
	s.mux.HandleFunc("GET /v1/scenarios/{name}", s.handleScenarioByName)
	s.mux.HandleFunc("POST /v1/scenarios", s.handleScenarioPost)
	s.mux.HandleFunc("POST /v1/policies", s.handlePolicyPost)
	s.mux.HandleFunc("POST /v1/runs", s.handleRunSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleRunList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleRunGet)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleRunEvents)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleRunCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Metrics exposes the server's counters (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// statusWriter captures the status and byte count for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Unwrap exposes the wrapped writer to http.ResponseController, so the
// SSE handler can flush through the logging wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// ServeHTTP implements http.Handler with counting and structured logs.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	start := s.cfg.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	s.log.Info("request",
		"method", r.Method,
		"path", r.URL.Path,
		"query", r.URL.RawQuery,
		"status", sw.status,
		"bytes", sw.bytes,
		"dur_ms", float64(s.cfg.Now().Sub(start))/float64(time.Millisecond),
		"cache", sw.Header().Get(cacheHeader),
	)
}

// Close stops accepting new computations and drains the in-flight ones
// through the runner pool; ctx bounds the drain. The run manager drains
// first (queued and running runs finish or, at ctx expiry, are
// interrupted and marked failed — their persisted points survive), then
// the synchronous computations. After the drain (or on ctx expiry) the
// base context is cancelled, so stragglers observe cancellation. Cached
// results keep being served after Close.
func (s *Server) Close(ctx context.Context) error {
	rerr := s.runs.Close(ctx)
	s.drainMu <- struct{}{}
	already := s.closed
	s.closed = true
	idle := s.idleLocked()
	<-s.drainMu
	if already {
		<-idle
		return nil
	}
	select {
	case <-idle:
		s.stop()
		s.pool.Wait()
		return rerr
	case <-ctx.Done():
		s.stop() // hurry the stragglers via context cancellation
		<-idle
		s.pool.Wait()
		return ctx.Err()
	}
}

// beginCompute registers one computation unless the server is draining.
func (s *Server) beginCompute() bool {
	s.drainMu <- struct{}{}
	defer func() { <-s.drainMu }()
	if s.closed {
		return false
	}
	s.pending++
	return true
}

// endCompute retires one computation and wakes a pending drain.
func (s *Server) endCompute() {
	s.drainMu <- struct{}{}
	s.pending--
	if s.pending == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	<-s.drainMu
}

// idleLocked returns a channel closed once no computation is pending.
// Callers must hold drainMu.
func (s *Server) idleLocked() chan struct{} {
	ch := make(chan struct{})
	if s.pending == 0 {
		close(ch)
		return ch
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	return s.idle
}

// do serves key from the cache, or coalesces onto (or starts) the one
// in-flight computation of fn for that key. The second return value
// reports how ("hit", "miss", "coalesced").
func (s *Server) do(reqCtx context.Context, key, id string, params map[string]string, fn func(ctx context.Context) ([]*report.Table, error)) (*Result, string, error) {
	if res, ok := s.cache.get(key); ok {
		s.metrics.CacheHits.Add(1)
		return res, "hit", nil
	}
	s.metrics.CacheMisses.Add(1)
	c, leader := s.flights.join(key)
	source := "coalesced"
	if leader {
		source = "miss"
		if !s.beginCompute() {
			s.flights.complete(key, c, nil, ErrDraining)
		} else {
			go s.runFlight(key, id, params, c, fn)
		}
	} else {
		s.metrics.Coalesced.Add(1)
	}
	select {
	case <-c.done:
		return c.res, source, c.err
	case <-reqCtx.Done():
		// The client is gone; the computation keeps running for the
		// other waiters and the cache.
		return nil, source, reqCtx.Err()
	}
}

// runFlight executes one coalesced computation on the bounded pool.
func (s *Server) runFlight(key, id string, params map[string]string, c *call, fn func(ctx context.Context) ([]*report.Table, error)) {
	s.pool.Go(func(poolCtx context.Context) error {
		defer s.endCompute()
		ctx, cancel := context.WithTimeout(poolCtx, s.cfg.ComputeTimeout)
		defer cancel()
		s.metrics.Computes.Add(1)
		s.metrics.InFlight.Add(1)
		start := s.cfg.Now()
		tables, err := fn(ctx)
		elapsed := s.cfg.Now().Sub(start)
		s.metrics.InFlight.Add(-1)
		s.metrics.observe(elapsed)
		var res *Result
		if err != nil {
			s.metrics.ComputeErrors.Add(1)
		} else {
			res = &Result{
				ID:         id,
				Params:     params,
				Tables:     tables,
				ComputedAt: start,
				ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
			}
			s.cache.put(key, res)
		}
		s.flights.complete(key, c, res, err)
		// Per-request failures must not cancel the pool's other work.
		return nil
	})
}

// transientFigures can be re-parameterized with a shorter duration, like
// the CLI's -duration flag.
var transientFigures = map[string]bool{"fig11": true, "fig12": true, "fig13": true}

// maxTSPCores caps the platform size /v1/tsp will build. With the
// sparse-first thermal solver the model itself is O(nnz), and the
// remaining quadratic allocation is the block×block influence matrix
// (~134 MB at this cap), so an unbounded query parameter would still let
// one request exhaust memory; the paper's largest platform (8 nm) has
// 361 cores, far below this limit.
const maxTSPCores = 4096

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.order)
}

// errUnknownExperiment marks lookups of unregistered experiment names,
// so both the sync and async paths map them to 404.
var errUnknownExperiment = errors.New("unknown experiment")

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := allowParams(r, "duration"); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var duration float64
	if v := r.URL.Query().Get("duration"); v != "" {
		d, err := strconv.ParseFloat(v, 64)
		if err != nil || d <= 0 || math.IsInf(d, 0) {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid duration %q: want a positive number of seconds", v))
			return
		}
		duration = d
	}
	key, params, fn, err := s.experimentCompute(name, duration)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errUnknownExperiment) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	s.serveResult(w, r, key, name, params, fn)
}

// experimentCompute resolves an experiment name (with optional duration
// override) into its cache key, response params, and compute closure —
// the one resolution both GET /v1/experiments/{name} and POST /v1/runs
// share, so an async run produces the same key and the same tables as
// the synchronous request.
func (s *Server) experimentCompute(name string, duration float64) (string, map[string]string, computeFn, error) {
	e, ok := s.exps[name]
	if !ok {
		return "", nil, nil, fmt.Errorf("%w %q", errUnknownExperiment, name)
	}
	key := name
	params := map[string]string{}
	if duration > 0 {
		if !transientFigures[name] {
			return "", nil, nil, fmt.Errorf("duration is only supported for the transient figures (fig11–fig13), not %q", name)
		}
		key = fmt.Sprintf("%s?duration=%g", name, duration)
		params["duration"] = strconv.FormatFloat(duration, 'g', -1, 64)
	}
	fn := func(ctx context.Context) ([]*report.Table, error) {
		res, err := runExperiment(ctx, e, duration)
		if err != nil {
			return nil, err
		}
		tables, ok := experiments.TablesOf(res)
		if !ok {
			return nil, fmt.Errorf("experiment %q has no structured output", name)
		}
		return tables, nil
	}
	return key, params, fn, nil
}

// runExperiment dispatches with the optional duration override.
func runExperiment(ctx context.Context, e experiments.Experiment, duration float64) (experiments.Renderer, error) {
	if duration > 0 {
		switch e.ID {
		case "fig11":
			return experiments.Fig11(ctx, experiments.Fig11Options{DurationS: duration})
		case "fig12":
			return experiments.Fig12(ctx, experiments.Fig12Options{DurationS: duration})
		case "fig13":
			return experiments.Fig13(ctx, experiments.Fig13Options{DurationS: duration})
		}
	}
	return e.Run(ctx)
}

func (s *Server) handleTSP(w http.ResponseWriter, r *http.Request) {
	if err := allowParams(r, "node", "cores", "active"); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	node, err := parseNode(q.Get("node"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cores := experiments.CoresForNode(node)
	if v := q.Get("cores"); v != "" {
		if cores, err = strconv.Atoi(v); err != nil || cores <= 0 || cores > maxTSPCores {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid cores %q: want an integer in [1,%d]", v, maxTSPCores))
			return
		}
	}
	active, err := strconv.Atoi(q.Get("active"))
	if err != nil || active <= 0 || active > cores {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid active %q: want an integer in [1,%d]", q.Get("active"), cores))
		return
	}
	params := map[string]string{
		"node":   node.String(),
		"cores":  strconv.Itoa(cores),
		"active": strconv.Itoa(active),
	}
	key := fmt.Sprintf("tsp?node=%s&cores=%d&active=%d", node, cores, active)
	fn := func(ctx context.Context) ([]*report.Table, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := experiments.PlatformFor(node, cores)
		if err != nil {
			return nil, err
		}
		calc, err := tsp.New(p.Thermal, p.TDTM)
		if err != nil {
			return nil, err
		}
		budget, _, err := calc.WorstCase(ctx, active)
		if err != nil {
			return nil, err
		}
		t := &report.Table{
			Title:   fmt.Sprintf("TSP worst-case budget, %s, %d cores", node, cores),
			Columns: []string{"active cores", "TSP/core [W]", "total [W]"},
		}
		t.AddRow(strconv.Itoa(active),
			fmt.Sprintf("%.3f", budget),
			fmt.Sprintf("%.1f", budget*float64(active)))
		t.AddNote("critical temperature (TDTM): %.0f °C", calc.Tcrit())
		return []*report.Table{t}, nil
	}
	s.serveResult(w, r, key, "tsp", params, fn)
}

// serveResult runs the do pipeline and writes the JSON response with
// error-to-status mapping.
func (s *Server) serveResult(w http.ResponseWriter, r *http.Request, key, id string, params map[string]string, fn func(ctx context.Context) ([]*report.Table, error)) {
	res, source, err := s.do(r.Context(), key, id, params, fn)
	w.Header().Set(cacheHeader, source)
	if err != nil {
		switch {
		case errors.Is(err, ErrDraining):
			s.writeRetryError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, fmt.Errorf("%s: computation timed out: %w", id, err))
		case errors.Is(err, context.Canceled):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, experiments.ErrOptions), errors.Is(err, scenario.ErrSpec),
			errors.Is(err, policy.ErrPolicy):
			writeError(w, http.StatusBadRequest, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, resultResponse{Result: res, Cache: source})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": s.cfg.Now().Sub(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.snapshot(s.cache.len(), s.runs.Stats()))
}

// allowParams rejects query parameters outside the allowed set, so typos
// fail loudly instead of silently computing something else.
func allowParams(r *http.Request, allowed ...string) error {
	for k := range r.URL.Query() {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("unknown parameter %q (allowed: %s)", k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// parseNode accepts "16", "16nm" (any registered node); empty selects
// the paper's 16 nm baseline.
func parseNode(v string) (tech.Node, error) {
	if v == "" {
		return tech.Node16, nil
	}
	n, err := strconv.Atoi(strings.TrimSuffix(v, "nm"))
	if err == nil {
		for _, node := range tech.Nodes() {
			if tech.Node(n) == node {
				return node, nil
			}
		}
	}
	return 0, fmt.Errorf("invalid node %q: want one of %v", v, tech.Nodes())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
