package service

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"darksim/internal/report"
	"darksim/internal/scenario"
)

// maxSpecBytes bounds a POST /v1/scenarios body. Specs are small JSON
// documents; a megabyte already fits thousands of workload entries.
const maxSpecBytes = 1 << 20

// scenarioInfo is one row of the GET /v1/scenarios pack listing.
type scenarioInfo struct {
	Name   string  `json:"name"`
	NodeNM int     `json:"node_nm"`
	Cores  int     `json:"cores"`
	TDPW   float64 `json:"tdp_w"`
	Hash   string  `json:"hash"`
}

// handleScenarioList lists the built-in scenario pack.
func (s *Server) handleScenarioList(w http.ResponseWriter, r *http.Request) {
	infos := make([]scenarioInfo, 0, len(scenario.Pack()))
	for _, spec := range scenario.Pack() {
		h, err := scenario.Hash(spec)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		infos = append(infos, scenarioInfo{
			Name:   spec.Name,
			NodeNM: spec.NodeNM,
			Cores:  spec.TotalCores(),
			TDPW:   spec.TDPW,
			Hash:   h,
		})
	}
	writeJSON(w, http.StatusOK, infos)
}

// handleScenarioByName compiles and evaluates one pack scenario.
func (s *Server) handleScenarioByName(w http.ResponseWriter, r *http.Request) {
	if err := allowParams(r); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := scenario.PackByName(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	s.serveScenario(w, r, spec)
}

// handleScenarioPost evaluates a user-defined spec from the request body.
// The cache key is the spec's content hash, so renamed, reordered or
// differently-spelled specs for the same chip hit the same cache entry
// and coalesce onto the same in-flight computation.
func (s *Server) handleScenarioPost(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading spec body: %w", err))
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("spec body exceeds %d bytes", maxSpecBytes))
		return
	}
	spec, err := scenario.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveScenario(w, r, spec)
}

// serveScenario validates eagerly (cheap, 400s before any compute slot is
// taken) and runs compile + evaluate through the do pipeline.
func (s *Server) serveScenario(w http.ResponseWriter, r *http.Request, spec scenario.Spec) {
	key, params, fn, err := scenarioCompute(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveResult(w, r, key, "scenario", params, fn)
}

// scenarioCompute resolves a spec into its content-hash cache key,
// response params, and compile+evaluate closure — shared by the
// synchronous scenario handlers and POST /v1/runs, so an async scenario
// run dedupes and caches exactly like the synchronous request.
func scenarioCompute(spec scenario.Spec) (string, map[string]string, computeFn, error) {
	hash, err := scenario.Hash(spec)
	if err != nil {
		return "", nil, nil, err
	}
	params := map[string]string{"hash": hash}
	if spec.Name != "" {
		params["name"] = spec.Name
	}
	fn := func(ctx context.Context) ([]*report.Table, error) {
		sc, err := scenario.Compile(spec)
		if err != nil {
			return nil, err
		}
		res, err := sc.Evaluate(ctx)
		if err != nil {
			return nil, err
		}
		return res.Tables(), nil
	}
	return "scenario:" + hash, params, fn, nil
}
