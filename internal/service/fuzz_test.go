package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"darksim/internal/experiments"
	"darksim/internal/report"
)

// FuzzServiceParams throws arbitrary experiment names and query strings
// at the HTTP mux: every request must produce a well-formed HTTP status,
// never a panic. Experiments are zero-cost stubs so the fuzzer exercises
// routing, parameter validation and error mapping, not figure math.
func FuzzServiceParams(f *testing.F) {
	stub := func(id string) experiments.Experiment {
		return experiments.Experiment{
			ID:          id,
			Description: "fuzz stub",
			Run: func(ctx context.Context) (experiments.Renderer, error) {
				return &fakeResult{tables: []*report.Table{{
					Title: id, Columns: []string{"v"}, Rows: [][]string{{"1"}},
				}}}, nil
			},
		}
	}
	srv := New(Config{Workers: 1}, []experiments.Experiment{stub("fig1"), stub("fig11")})
	f.Cleanup(func() { _ = srv.Close(context.Background()) })

	f.Add("/v1/experiments/fig1", "")
	f.Add("/v1/experiments/fig11", "duration=2")
	f.Add("/v1/experiments/fig11", "duration=NaN")
	f.Add("/v1/experiments/../../etc/passwd", "")
	f.Add("/v1/tsp", "node=16nm&cores=100&active=40")
	f.Add("/v1/tsp", "node=16nm&cores=999999999&active=1")
	f.Add("/v1/tsp", "node=%zz&active=-1")
	f.Add("/healthz", "")
	f.Add("/metrics", "")
	f.Add("/v1/experiments", "bogus=1")
	f.Fuzz(func(t *testing.T, path, rawQuery string) {
		// Build the URL directly: httptest.NewRequest panics on targets
		// the HTTP client would never emit, but a reverse proxy can hand
		// the mux nearly anything, so the handler must stay panic-free.
		req := &http.Request{
			Method: http.MethodGet,
			URL:    &url.URL{Path: path, RawQuery: rawQuery},
			Proto:  "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Host:       "fuzz.local",
			RemoteAddr: "192.0.2.1:1234",
		}
		req = req.WithContext(context.Background())
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code < 200 || rec.Code > 599 {
			t.Fatalf("GET %q?%q: implausible status %d", path, rawQuery, rec.Code)
		}
	})
}
