package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"darksim/internal/scenario"
)

func post(t *testing.T, ts *httptest.Server, path, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

func TestScenarioListAndByName(t *testing.T) {
	s := New(Config{}, nil)
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body, _ := get(t, ts, "/v1/scenarios")
	if code != http.StatusOK {
		t.Fatalf("list status = %d, body %s", code, body)
	}
	var infos []scenarioInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, in := range infos {
		names[in.Name] = true
		if len(in.Hash) != 64 {
			t.Errorf("%s: hash %q is not sha256 hex", in.Name, in.Hash)
		}
	}
	for _, want := range []string{scenario.PackSymmetric, scenario.PackAsymmetric, scenario.PackMultiInstancing} {
		if !names[want] {
			t.Errorf("pack listing is missing %q", want)
		}
	}

	if code, body, _ := get(t, ts, "/v1/scenarios/no_such"); code != http.StatusNotFound {
		t.Fatalf("unknown scenario: status %d body %s", code, body)
	}

	code, body, _ = get(t, ts, "/v1/scenarios/"+scenario.PackMultiInstancing)
	if code != http.StatusOK {
		t.Fatalf("by-name status = %d, body %s", code, body)
	}
	rr := decodeResult(t, body)
	if len(rr.Tables) != 3 {
		t.Fatalf("got %d tables, want 3", len(rr.Tables))
	}
}

// TestScenarioPostDedupesByContentHash is the acceptance check: two
// submissions of the same chip — spelled differently (reordered
// collections, renamed, defaults explicit) — must key to the same cache
// entry, so the second is a hit and only one compute runs.
func TestScenarioPostDedupesByContentHash(t *testing.T) {
	s := New(Config{}, nil)
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	specA := `{
		"name": "my chip",
		"node_nm": 16, "tdp_w": 180,
		"core_types": [
			{"name": "big", "count": 2, "area_scale": 4, "power_scale": 2.5, "perf_scale": 1.8},
			{"name": "little", "count": 30}
		],
		"apps": [
			{"app": "x264", "core_type": "big", "instances": 2, "threads": 1},
			{"app": "swaptions", "core_type": "little", "instances": 2}
		]
	}`
	// Same chip: different name, reordered core types and apps, defaults
	// spelled out explicitly.
	specB := `{
		"name": "same chip respelled",
		"node_nm": 16, "tdp_w": 180, "tdtm_c": 80, "floorplan": "shelves",
		"core_types": [
			{"name": "little", "count": 30, "area_scale": 1, "power_scale": 1, "perf_scale": 1},
			{"name": "big", "count": 2, "area_scale": 4, "power_scale": 2.5, "perf_scale": 1.8}
		],
		"apps": [
			{"app": "swaptions", "core_type": "little", "instances": 2, "threads": 8},
			{"app": "x264", "core_type": "big", "instances": 2, "threads": 1}
		]
	}`

	code, body, hdr := post(t, ts, "/v1/scenarios", specA)
	if code != http.StatusOK {
		t.Fatalf("first POST: status %d body %s", code, body)
	}
	if src := hdr.Get(cacheHeader); src != "miss" {
		t.Fatalf("first POST cache = %q, want miss", src)
	}

	code, body, hdr = post(t, ts, "/v1/scenarios", specB)
	if code != http.StatusOK {
		t.Fatalf("second POST: status %d body %s", code, body)
	}
	if src := hdr.Get(cacheHeader); src != "hit" {
		t.Fatalf("second POST cache = %q, want hit (content-hash dedupe)", src)
	}
	if n := s.Metrics().Computes.Load(); n != 1 {
		t.Fatalf("computes = %d, want exactly 1 for two spellings of one chip", n)
	}
	rr := decodeResult(t, body)
	if rr.Result.Params["hash"] == "" {
		t.Fatal("result params carry no spec hash")
	}
}

func TestScenarioPostValidation(t *testing.T) {
	s := New(Config{}, nil)
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := map[string]string{
		"malformed":     `{not json`,
		"unknown field": `{"node_nm":16,"tdp":220}`,
		"zero TDP":      `{"node_nm":16,"tdp_w":0,"core_types":[{"name":"c","count":4}],"apps":[{"app":"x264","instances":1}]}`,
		"unknown app":   `{"node_nm":16,"tdp_w":100,"core_types":[{"name":"c","count":4}],"apps":[{"app":"crysis","instances":1}]}`,
	}
	for name, body := range cases {
		if code, rbody, _ := post(t, ts, "/v1/scenarios", body); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d body %s, want 400", name, code, rbody)
		}
	}
	if n := s.Metrics().Computes.Load(); n != 0 {
		t.Errorf("invalid specs consumed %d compute slots, want 0", n)
	}
}
