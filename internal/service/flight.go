package service

import "sync"

// call is one in-flight computation that any number of requests wait on.
type call struct {
	done chan struct{} // closed when res/err are set
	res  *Result
	err  error
}

// flightGroup coalesces duplicate requests: while a computation for a key
// is in flight, later requests for the same key join it instead of
// starting their own (singleflight). Unlike a cache, entries live only as
// long as the computation.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*call
}

// join returns the call for key and whether the caller became its leader
// (and therefore must run the computation and complete the call).
func (g *flightGroup) join(key string) (c *call, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c = &call{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// complete publishes the outcome and wakes every waiter. It must be
// called exactly once per leader, after which new requests for the key
// start a fresh flight (typically served from the cache instead).
func (g *flightGroup) complete(key string, c *call, res *Result, err error) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.res, c.err = res, err
	close(c.done)
}
