package service

import (
	"sync/atomic"
	"time"

	"darksim/internal/jobs"
)

// latencyBucketsMS are the upper bounds (milliseconds) of the compute
// latency histogram; an implicit +Inf bucket catches the rest.
var latencyBucketsMS = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 30000}

// Metrics holds the server's expvar-style counters. All fields are
// monotonic atomics except InFlight (a gauge); /metrics serves a JSON
// snapshot.
type Metrics struct {
	Requests       atomic.Int64 // HTTP requests received
	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64
	CacheEvictions atomic.Int64
	CacheExpired   atomic.Int64
	Computes       atomic.Int64 // underlying experiment computations started
	ComputeErrors  atomic.Int64
	Coalesced      atomic.Int64 // waiters that joined an in-flight compute
	InFlight       atomic.Int64 // computations currently running

	latencyCount [10]atomic.Int64 // len(latencyBucketsMS)+1
	latencySumUS atomic.Int64     // total compute time, microseconds
}

// observe records one compute latency.
func (m *Metrics) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	m.latencyCount[i].Add(1)
	m.latencySumUS.Add(d.Microseconds())
}

// Bucket is one histogram cell of the snapshot: the count of computes
// with latency <= LE milliseconds (LE = 0 marks the +Inf bucket).
type Bucket struct {
	LE    float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// Snapshot is the marshalable state served by /metrics.
type Snapshot struct {
	Requests int64 `json:"requests"`
	Cache    struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		Expired   int64 `json:"expired"`
		Size      int   `json:"size"`
	} `json:"cache"`
	Compute struct {
		Count            int64    `json:"count"`
		Errors           int64    `json:"errors"`
		InFlight         int64    `json:"inflight"`
		CoalescedWaiters int64    `json:"coalesced_waiters"`
		TotalMS          float64  `json:"total_ms"`
		LatencyMS        []Bucket `json:"latency_ms_buckets"`
	} `json:"compute"`
	// Runs is the async run runtime: queue depth/capacity, live gauges,
	// terminal counters, and the number of connected SSE subscribers.
	Runs jobs.Stats `json:"runs"`
}

// snapshot captures the counters; cacheSize and runs are sampled by the
// caller.
func (m *Metrics) snapshot(cacheSize int, runs jobs.Stats) Snapshot {
	var s Snapshot
	s.Requests = m.Requests.Load()
	s.Cache.Hits = m.CacheHits.Load()
	s.Cache.Misses = m.CacheMisses.Load()
	s.Cache.Evictions = m.CacheEvictions.Load()
	s.Cache.Expired = m.CacheExpired.Load()
	s.Cache.Size = cacheSize
	s.Compute.Count = m.Computes.Load()
	s.Compute.Errors = m.ComputeErrors.Load()
	s.Compute.InFlight = m.InFlight.Load()
	s.Compute.CoalescedWaiters = m.Coalesced.Load()
	s.Compute.TotalMS = float64(m.latencySumUS.Load()) / 1000
	for i := range m.latencyCount {
		b := Bucket{Count: m.latencyCount[i].Load()}
		if i < len(latencyBucketsMS) {
			b.LE = latencyBucketsMS[i]
		}
		s.Compute.LatencyMS = append(s.Compute.LatencyMS, b)
	}
	s.Runs = runs
	return s
}
