package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"darksim/internal/jobs"
	"darksim/internal/scenario"
)

// TestPolicyPostDedupesByContentHash mirrors the scenario acceptance
// check: two spellings of the same sandbox evaluation (renamed, policies
// defaulted vs. spelled out) must key to one cache entry and one run.
func TestPolicyPostDedupesByContentHash(t *testing.T) {
	s := New(Config{}, nil)
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	specA := fmt.Sprintf(`{
		"name": "race A",
		"pack": %q,
		"duration_s": 0.02
	}`, scenario.PackSymmetric)
	// Same evaluation: renamed, the default policy trio spelled out.
	specB := fmt.Sprintf(`{
		"name": "race B respelled",
		"pack": %q,
		"duration_s": 0.02,
		"policies": [{"name": "constant"}, {"name": "boost"}, {"name": "dsrem"}]
	}`, scenario.PackSymmetric)

	code, body, hdr := post(t, ts, "/v1/policies", specA)
	if code != http.StatusOK {
		t.Fatalf("first POST: status %d body %s", code, body)
	}
	if src := hdr.Get(cacheHeader); src != "miss" {
		t.Fatalf("first POST cache = %q, want miss", src)
	}
	rr := decodeResult(t, body)
	if len(rr.Tables) == 0 || !strings.Contains(rr.Tables[0].Title, "Policy frontier") {
		t.Fatalf("response lacks a frontier table: %s", body)
	}

	code, body, hdr = post(t, ts, "/v1/policies", specB)
	if code != http.StatusOK {
		t.Fatalf("second POST: status %d body %s", code, body)
	}
	if src := hdr.Get(cacheHeader); src != "hit" {
		t.Fatalf("second POST cache = %q, want hit (content-hash dedupe)", src)
	}
	if n := s.Metrics().Computes.Load(); n != 1 {
		t.Fatalf("computes = %d, want exactly 1 for two spellings of one evaluation", n)
	}
	if decodeResult(t, body).Result.Params["hash"] == "" {
		t.Fatal("result params carry no spec hash")
	}
}

func TestPolicyPostValidation(t *testing.T) {
	s := New(Config{}, nil)
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := map[string]string{
		"malformed":      `{not json`,
		"unknown field":  `{"pack": "x", "policy": "boost"}`,
		"no workload":    `{"policies": [{"name": "boost"}]}`,
		"both workloads": fmt.Sprintf(`{"pack": %q, "scenario": {"node_nm": 16}}`, scenario.PackSymmetric),
		"unknown policy": fmt.Sprintf(`{"pack": %q, "policies": [{"name": "overclock"}]}`, scenario.PackSymmetric),
		"untunable tune": fmt.Sprintf(`{"pack": %q, "policies": [{"name": "constant"}], "tune": "constant"}`, scenario.PackSymmetric),
	}
	for name, body := range cases {
		if code, rbody, _ := post(t, ts, "/v1/policies", body); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d body %s, want 400", name, code, rbody)
		}
	}
	if n := s.Metrics().Computes.Load(); n != 0 {
		t.Errorf("invalid specs consumed %d compute slots, want 0", n)
	}
}

// TestPolicyRunAsync submits a tuning evaluation through POST /v1/runs:
// the run must succeed, stream frontier fragments as events, land in the
// ?kind=policy listing, and write through to the synchronous cache.
func TestPolicyRunAsync(t *testing.T) {
	s := New(Config{}, nil)
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	spec := fmt.Sprintf(`{
		"pack": %q,
		"duration_s": 0.02,
		"policies": [{"name": "constant"}, {"name": "boost"}],
		"tune": "boost", "budget": 2
	}`, scenario.PackSymmetric)

	code, body, _ := postRun(t, ts, fmt.Sprintf(`{"policy": %s}`, spec))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", code, body)
	}
	rr := decodeRun(t, body)
	if rr.Kind != "policy" {
		t.Fatalf("run kind = %q, want policy", rr.Kind)
	}
	run := waitRunState(t, ts, rr.ID, jobs.StateDone)
	if len(run.Tables) == 0 || !strings.Contains(run.Tables[0].Title, "Policy frontier") {
		t.Fatalf("terminal run lacks the frontier table: %+v", run.Tables)
	}
	found := false
	for _, tb := range run.Tables {
		if strings.Contains(tb.Title, "Tuning boost") {
			found = true
		}
	}
	if !found {
		t.Fatal("terminal run lacks the tuning table")
	}
	events := readEvents(t, ts, rr.ID, "")
	if !strings.Contains(events, "policy constant") || !strings.Contains(events, "policy boost") {
		t.Fatalf("event stream lacks per-policy frontier fragments:\n%s", events)
	}

	// The kind filter isolates policy runs; an unknown parameter still 400s.
	code, body, _ = get(t, ts, "/v1/runs?kind=policy")
	if code != http.StatusOK {
		t.Fatalf("kind listing: %d %s", code, body)
	}
	var runs []jobs.Run
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Kind != "policy" {
		t.Fatalf("kind=policy listing = %+v", runs)
	}
	if code, body, _ = get(t, ts, "/v1/runs?kind=experiment"); code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("kind=experiment listing = %d %s, want empty", code, body)
	}

	// The async result wrote through to the synchronous cache.
	code, _, hdr := post(t, ts, "/v1/policies", spec)
	if code != http.StatusOK || hdr.Get(cacheHeader) != "hit" {
		t.Fatalf("synchronous follow-up: status %d cache %q, want 200 hit", code, hdr.Get(cacheHeader))
	}
}

func TestPolicyRunRejectsDuration(t *testing.T) {
	s := New(Config{}, nil)
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := fmt.Sprintf(`{"policy": {"pack": %q}, "duration": 1}`, scenario.PackSymmetric)
	if code, rbody, _ := postRun(t, ts, body); code != http.StatusBadRequest {
		t.Fatalf("duration on a policy run: status %d body %s, want 400", code, rbody)
	}
	if code, rbody, _ := postRun(t, ts, `{}`); code != http.StatusBadRequest {
		t.Fatalf("empty run request: status %d body %s, want 400", code, rbody)
	}
}
