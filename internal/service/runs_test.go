package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"darksim/internal/experiments"
	"darksim/internal/jobs"
	"darksim/internal/progress"
	"darksim/internal/report"
)

// progressExp builds a registry entry that emits `points` one-row
// fragments through the context progress sink (the async path's hook)
// before returning its final tables. A non-nil gate is received from
// once per point, so tests control the pace.
func progressExp(id string, points int, computes *atomic.Int64, gate chan struct{}) experiments.Experiment {
	return experiments.Experiment{
		ID:          id,
		Description: "async test experiment " + id,
		Run: func(ctx context.Context) (experiments.Renderer, error) {
			computes.Add(1)
			for i := 1; i <= points; i++ {
				if gate != nil {
					select {
					case <-gate:
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
				if progress.Enabled(ctx) {
					frag := &report.Table{
						Title:   fmt.Sprintf("%s point %d", id, i),
						Columns: []string{"v"},
						Rows:    [][]string{{strconv.Itoa(i)}},
					}
					progress.Emit(ctx, progress.Point{Table: frag, Done: i, Total: points})
				}
			}
			return &fakeResult{tables: oneTable(id)}, nil
		},
	}
}

func postRun(t *testing.T, ts *httptest.Server, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/runs: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

func decodeRun(t *testing.T, body string) runResponse {
	t.Helper()
	var rr runResponse
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatalf("decode run %q: %v", body, err)
	}
	return rr
}

// waitRunState polls GET /v1/runs/{id} until the run reaches st.
func waitRunState(t *testing.T, ts *httptest.Server, id string, st jobs.State) jobs.Run {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, body, _ := get(t, ts, "/v1/runs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET run %s: %d %s", id, code, body)
		}
		var r jobs.Run
		if err := json.Unmarshal([]byte(body), &r); err != nil {
			t.Fatal(err)
		}
		if r.State == st {
			return r
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never reached %s", id, st)
	return jobs.Run{}
}

// readEvents consumes one SSE connection to EOF (the stream ends after
// the terminal event) and returns the raw bytes.
func readEvents(t *testing.T, ts *httptest.Server, id, lastEventID string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET events: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// closeWithin registers a bounded Close so a test that fails while a
// gated job is still blocked cannot deadlock the cleanup: the drain
// deadline expires and the manager interrupts the stragglers.
func closeWithin(t *testing.T, s *Server) {
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	})
}

// frames splits an SSE byte stream into its event frames.
func frames(stream string) []string {
	var out []string
	for _, f := range strings.Split(stream, "\n\n") {
		if f != "" {
			out = append(out, f+"\n\n")
		}
	}
	return out
}

func TestRunLifecycleOverHTTP(t *testing.T) {
	var computes atomic.Int64
	s := New(Config{}, []experiments.Experiment{progressExp("figp", 3, &computes, nil)})
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body, _ := postRun(t, ts, `{"experiment":"figp"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d %s, want 202", code, body)
	}
	rr := decodeRun(t, body)
	if rr.Deduped || rr.ID == "" {
		t.Fatalf("submission = %+v, want a fresh run id", rr)
	}
	final := waitRunState(t, ts, rr.ID, jobs.StateDone)
	if final.Done != 3 || final.Total != 3 {
		t.Errorf("progress = %d/%d, want 3/3", final.Done, final.Total)
	}
	if len(final.Tables) != 1 || final.Tables[0].Title != "figp" {
		t.Errorf("terminal tables = %+v", final.Tables)
	}
	if computes.Load() != 1 {
		t.Errorf("computes = %d, want 1", computes.Load())
	}

	// The run populated the synchronous cache: a sync GET for the same
	// key is a hit, not a second computation.
	codeSync, bodySync, hdr := get(t, ts, "/v1/experiments/figp")
	if codeSync != http.StatusOK || hdr.Get(cacheHeader) != "hit" {
		t.Fatalf("sync GET after run = %d, cache %q, want hit", codeSync, hdr.Get(cacheHeader))
	}
	sync := decodeResult(t, bodySync)
	a, _ := json.Marshal(sync.Tables)
	b, _ := json.Marshal(final.Tables)
	if string(a) != string(b) {
		t.Errorf("sync tables %s != run tables %s", a, b)
	}
	if computes.Load() != 1 {
		t.Errorf("computes after sync GET = %d, want 1 (served from cache)", computes.Load())
	}

	// The run appears in the listing.
	codeList, bodyList, _ := get(t, ts, "/v1/runs")
	if codeList != http.StatusOK || !strings.Contains(bodyList, rr.ID) {
		t.Errorf("GET /v1/runs = %d, missing %s", codeList, rr.ID)
	}
}

func TestRunEventsReplayIsByteIdentical(t *testing.T) {
	var computes atomic.Int64
	s := New(Config{}, []experiments.Experiment{progressExp("figp", 3, &computes, nil)})
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, body, _ := postRun(t, ts, `{"experiment":"figp"}`)
	rr := decodeRun(t, body)
	waitRunState(t, ts, rr.ID, jobs.StateDone)

	first := readEvents(t, ts, rr.ID, "")
	fr := frames(first)
	// running + 3 points + done
	if len(fr) != 5 {
		t.Fatalf("stream has %d frames, want 5:\n%s", len(fr), first)
	}
	for i, f := range fr {
		if !strings.HasPrefix(f, fmt.Sprintf("id: %d\n", i+1)) {
			t.Errorf("frame %d does not carry SSE id %d:\n%s", i, i+1, f)
		}
	}
	if !strings.Contains(fr[4], `"state":"done"`) || !strings.Contains(fr[4], `"tables"`) {
		t.Errorf("terminal frame lacks done state or result tables:\n%s", fr[4])
	}

	// A full reconnect replays the identical bytes.
	if second := readEvents(t, ts, rr.ID, ""); second != first {
		t.Errorf("full replay differs:\n--- first\n%s\n--- second\n%s", first, second)
	}
	// A reconnect with Last-Event-ID: 2 replays exactly the byte suffix
	// after frame 2 — no gap, no duplicate, no reframing.
	if suffix := readEvents(t, ts, rr.ID, "2"); suffix != strings.Join(fr[2:], "") {
		t.Errorf("Last-Event-ID replay differs from the byte suffix:\n--- got\n%s\n--- want\n%s",
			suffix, strings.Join(fr[2:], ""))
	}
	// The ?after= query form is equivalent for clients without SSE
	// header support.
	code, afterBody, _ := get(t, ts, "/v1/runs/"+rr.ID+"/events?after=2")
	if code != http.StatusOK || afterBody != strings.Join(fr[2:], "") {
		t.Errorf("?after=2 replay = %d, differs from Last-Event-ID replay", code)
	}

	if code, body, _ := get(t, ts, "/v1/runs/"+rr.ID+"/events?after=x"); code != http.StatusBadRequest {
		t.Errorf("bogus ?after = %d %s, want 400", code, body)
	}
	if code, _, _ := get(t, ts, "/v1/runs/nope/events"); code != http.StatusNotFound {
		t.Errorf("events of unknown run = %d, want 404", code)
	}
}

func TestRunDedupeSharesOneRun(t *testing.T) {
	var computes atomic.Int64
	gate := make(chan struct{})
	s := New(Config{Workers: 2}, []experiments.Experiment{progressExp("figp", 1, &computes, gate)})
	closeWithin(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, body1, _ := postRun(t, ts, `{"experiment":"figp"}`)
	first := decodeRun(t, body1)
	waitRunState(t, ts, first.ID, jobs.StateRunning)
	_, body2, _ := postRun(t, ts, `{"experiment":"figp"}`)
	second := decodeRun(t, body2)
	if !second.Deduped || second.ID != first.ID {
		t.Fatalf("concurrent identical submission = %+v, want joined onto %s", second, first.ID)
	}
	close(gate)
	waitRunState(t, ts, first.ID, jobs.StateDone)
	if computes.Load() != 1 {
		t.Errorf("computes = %d, want 1 (submissions shared one computation)", computes.Load())
	}
}

func TestRunQueueFullReturns429(t *testing.T) {
	var computes atomic.Int64
	gate := make(chan struct{})
	exps := []experiments.Experiment{
		progressExp("figa", 1, &computes, gate),
		progressExp("figb", 1, &computes, gate),
		progressExp("figc", 1, &computes, gate),
		progressExp("figd", 1, &computes, gate),
	}
	s := New(Config{Workers: 1, QueueSize: 1, RetryAfter: 7 * time.Second}, exps)
	closeWithin(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()
	// Release the gated jobs before the cleanup drain (defers run first).
	defer close(gate)

	// figa occupies the only worker; figb is held by the dispatcher
	// waiting for a slot; figc fills the one-deep queue; figd bounces.
	_, body, _ := postRun(t, ts, `{"experiment":"figa"}`)
	waitRunState(t, ts, decodeRun(t, body).ID, jobs.StateRunning)
	if code, b, _ := postRun(t, ts, `{"experiment":"figb"}`); code != http.StatusAccepted {
		t.Fatalf("figb = %d %s", code, b)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.runs.Stats().QueueDepth != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if code, b, _ := postRun(t, ts, `{"experiment":"figc"}`); code != http.StatusAccepted {
		t.Fatalf("figc = %d %s", code, b)
	}
	code, b, hdr := postRun(t, ts, `{"experiment":"figd"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submission = %d %s, want 429", code, b)
	}
	if got := hdr.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want %q", got, "7")
	}

	// /metrics reflects the saturation.
	_, mbody, _ := get(t, ts, "/metrics")
	var snap Snapshot
	if err := json.Unmarshal([]byte(mbody), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Runs.Rejected != 1 || snap.Runs.QueueCap != 1 {
		t.Errorf("metrics runs = %+v, want rejected 1, queue_cap 1", snap.Runs)
	}
}

func TestRunCancelFreesComputeSlot(t *testing.T) {
	var computes atomic.Int64
	gate := make(chan struct{}) // never released: the job blocks on ctx
	s := New(Config{Workers: 1}, []experiments.Experiment{
		progressExp("figp", 1, &computes, gate),
		fakeExp("figq", &computes, nil),
	})
	closeWithin(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, body, _ := postRun(t, ts, `{"experiment":"figp"}`)
	rr := decodeRun(t, body)
	waitRunState(t, ts, rr.ID, jobs.StateRunning)
	if got := s.pool.Active(); got != 1 {
		t.Fatalf("pool active = %d during run, want 1", got)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+rr.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	waitRunState(t, ts, rr.ID, jobs.StateCancelled)
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.Active() != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.pool.Active(); got != 0 {
		t.Fatalf("pool active = %d after cancellation, want 0 (slot freed)", got)
	}
	// The freed slot serves the next request on the single-worker pool.
	if code, b, _ := get(t, ts, "/v1/experiments/figq"); code != http.StatusOK {
		t.Fatalf("sync request after cancel = %d %s", code, b)
	}

	if code, _, _ := func() (int, string, http.Header) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/nope", nil)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b), resp.Header
	}(); code != http.StatusNotFound {
		t.Errorf("DELETE unknown run = %d, want 404", code)
	}
}

func TestRunSubmitValidation(t *testing.T) {
	var computes atomic.Int64
	s := New(Config{}, []experiments.Experiment{fakeExp("figx", &computes, nil)})
	defer s.Close(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		body string
		code int
		frag string
	}{
		{`not json`, http.StatusBadRequest, "parsing run request"},
		{`{}`, http.StatusBadRequest, "exactly one"},
		{`{"experiment":"figx","scenario":{"x":1}}`, http.StatusBadRequest, "exactly one"},
		{`{"experiment":"nope"}`, http.StatusNotFound, "unknown experiment"},
		{`{"experiment":"figx","duration":-1}`, http.StatusBadRequest, "invalid duration"},
		{`{"experiment":"figx","duration":5}`, http.StatusBadRequest, "transient"},
		{`{"scenario":{"name":"broken"}}`, http.StatusBadRequest, ""},
	}
	for _, c := range cases {
		code, body, _ := postRun(t, ts, c.body)
		if code != c.code || !strings.Contains(body, c.frag) {
			t.Errorf("POST %s = %d %s, want %d containing %q", c.body, code, body, c.code, c.frag)
		}
	}
	if computes.Load() != 0 {
		t.Errorf("validation failures computed %d times", computes.Load())
	}
}

func TestDrainingRunsReturn503WithRetryAfter(t *testing.T) {
	var computes atomic.Int64
	s := New(Config{RetryAfter: 3 * time.Second}, []experiments.Experiment{fakeExp("figx", &computes, nil)})
	ts := httptest.NewServer(s)
	defer ts.Close()
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	code, body, hdr := postRun(t, ts, `{"experiment":"figx"}`)
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") != "3" {
		t.Errorf("draining POST /v1/runs = %d (Retry-After %q) %s, want 503 with hint",
			code, hdr.Get("Retry-After"), body)
	}
	codeSync, bodySync, hdrSync := get(t, ts, "/v1/experiments/figx")
	if codeSync != http.StatusServiceUnavailable || hdrSync.Get("Retry-After") != "3" {
		t.Errorf("draining sync GET = %d (Retry-After %q) %s, want 503 with hint",
			codeSync, hdrSync.Get("Retry-After"), bodySync)
	}
}

// TestRunFig12MatchesSync is the jobs-runtime smoke: a real (shortened)
// fig12 submitted as an async run streams one partial table per sweep
// point and terminates with exactly the tables the synchronous endpoint
// computes on an independent server.
func TestRunFig12MatchesSync(t *testing.T) {
	if testing.Short() {
		t.Skip("real fig12 transient sweep; skipped with -short")
	}
	syncSrv := New(Config{}, nil)
	defer syncSrv.Close(context.Background())
	syncTS := httptest.NewServer(syncSrv)
	defer syncTS.Close()
	asyncSrv := New(Config{}, nil)
	defer asyncSrv.Close(context.Background())
	asyncTS := httptest.NewServer(asyncSrv)
	defer asyncTS.Close()

	code, syncBody, _ := get(t, syncTS, "/v1/experiments/fig12?duration=0.2")
	if code != http.StatusOK {
		t.Fatalf("sync fig12 = %d %s", code, syncBody)
	}
	want, _ := json.Marshal(decodeResult(t, syncBody).Tables)

	code, body, _ := postRun(t, asyncTS, `{"experiment":"fig12","duration":0.2}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST fig12 run = %d %s", code, body)
	}
	rr := decodeRun(t, body)
	stream := readEvents(t, asyncTS, rr.ID, "")

	points, total := 0, 0
	for _, f := range frames(stream) {
		for _, line := range strings.Split(f, "\n") {
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev jobs.Event
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				t.Fatal(err)
			}
			if ev.Type == jobs.EventPoint {
				points++
				total = ev.Total
				if ev.Table == nil || len(ev.Table.Rows) != 1 {
					t.Errorf("point event %d lacks a one-row fragment table", ev.Seq)
				}
			}
		}
	}
	if points == 0 || points != total {
		t.Fatalf("streamed %d point events, want one per sweep point (total %d)", points, total)
	}

	final := waitRunState(t, asyncTS, rr.ID, jobs.StateDone)
	got, _ := json.Marshal(final.Tables)
	if string(got) != string(want) {
		t.Errorf("async fig12 tables differ from sync:\n--- async\n%s\n--- sync\n%s", got, want)
	}
	if final.Done != points || final.Total != total {
		t.Errorf("final progress %d/%d, want %d/%d", final.Done, final.Total, points, total)
	}
}
