package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Step is one control period of a policy sandbox run (internal/policy):
// the decision the policy made, the power partition it produced and the
// thermal ground truth after the thermal model advanced. The assertion
// engine checks invariants over sequences of these records, and
// WriteSteps/ReadSteps give them the same on-disk interchange format the
// characterization traces use.
type Step struct {
	// Index is the control-period number (0-based); TimeS its start time.
	Index int
	TimeS float64
	// Levels is the ladder level the policy set per placement; Gated
	// marks placements the policy power-gated for this period.
	Levels []int
	Gated  []bool
	// PlacementW is each placement's summed core power this period;
	// TotalW the chip total and MaxCoreW the hottest single core's power
	// (what the TSP budget bounds).
	PlacementW []float64
	TotalW     float64
	MaxCoreW   float64
	// PeakC is the peak core temperature after the thermal step; GIPS
	// and ActiveCores the throughput and powered-core count of the
	// period; TSPPerCoreW the worst-case thermal safe power of the
	// period's active set (0 when not evaluated).
	PeakC       float64
	GIPS        float64
	ActiveCores int
	TSPPerCoreW float64
	// DTM records that the sandbox's emergency throttle overrode the
	// policy's decision this period.
	DTM bool
}

// stepColumns is the WriteSteps header; ReadSteps requires exactly this
// field count per row.
const stepColumns = 12

// WriteSteps emits a policy trace as a tab-separated table with a header
// line. Per-placement vectors are comma-joined; a run with zero
// placements writes "-" so every row keeps the full column count.
func WriteSteps(w io.Writer, steps []Step) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# idx\ttime_s\tpeak_c\ttotal_w\tmax_core_w\tgips\tactive\ttsp_w\tdtm\tlevels\tgated\tplacement_w")
	for _, s := range steps {
		fmt.Fprintf(bw, "%d\t%.6f\t%.4f\t%.4f\t%.5f\t%.3f\t%d\t%.5f\t%d\t%s\t%s\t%s\n",
			s.Index, s.TimeS, s.PeakC, s.TotalW, s.MaxCoreW, s.GIPS, s.ActiveCores, s.TSPPerCoreW,
			boolBit(s.DTM), joinInts(s.Levels), joinBools(s.Gated), joinFloats(s.PlacementW))
	}
	return bw.Flush()
}

// ReadSteps parses a policy trace written by WriteSteps.
func ReadSteps(r io.Reader) ([]Step, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var steps []Step
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != stepColumns {
			return nil, fmt.Errorf("trace: line %d: want %d fields, got %d", line, stepColumns, len(fields))
		}
		var s Step
		var err error
		if s.Index, err = strconv.Atoi(fields[0]); err != nil {
			return nil, fmt.Errorf("trace: line %d: idx: %w", line, err)
		}
		for i, dst := range []*float64{&s.TimeS, &s.PeakC, &s.TotalW, &s.MaxCoreW, &s.GIPS} {
			if *dst, err = parseFinite(fields[1+i]); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
		}
		if s.ActiveCores, err = strconv.Atoi(fields[6]); err != nil {
			return nil, fmt.Errorf("trace: line %d: active: %w", line, err)
		}
		if s.TSPPerCoreW, err = parseFinite(fields[7]); err != nil {
			return nil, fmt.Errorf("trace: line %d: tsp: %w", line, err)
		}
		dtm, err := strconv.Atoi(fields[8])
		if err != nil || (dtm != 0 && dtm != 1) {
			return nil, fmt.Errorf("trace: line %d: dtm flag %q", line, fields[8])
		}
		s.DTM = dtm == 1
		if s.Levels, err = splitInts(fields[9]); err != nil {
			return nil, fmt.Errorf("trace: line %d: levels: %w", line, err)
		}
		if s.Gated, err = splitBools(fields[10]); err != nil {
			return nil, fmt.Errorf("trace: line %d: gated: %w", line, err)
		}
		if s.PlacementW, err = splitFloats(fields[11]); err != nil {
			return nil, fmt.Errorf("trace: line %d: placement_w: %w", line, err)
		}
		if len(s.Gated) != len(s.Levels) || len(s.PlacementW) != len(s.Levels) {
			return nil, fmt.Errorf("trace: line %d: vector lengths differ (%d levels, %d gated, %d powers)",
				line, len(s.Levels), len(s.Gated), len(s.PlacementW))
		}
		steps = append(steps, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if len(steps) == 0 {
		return nil, errors.New("trace: empty input")
	}
	return steps, nil
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

func joinInts(vs []int) string {
	if len(vs) == 0 {
		return "-"
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

func joinBools(vs []bool) string {
	if len(vs) == 0 {
		return "-"
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(boolBit(v))
	}
	return strings.Join(parts, ",")
}

func joinFloats(vs []float64) string {
	if len(vs) == 0 {
		return "-"
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

func splitInts(s string) ([]int, error) {
	if s == "-" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func splitBools(s string) ([]bool, error) {
	if s == "-" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]bool, len(parts))
	for i, p := range parts {
		switch p {
		case "0":
		case "1":
			out[i] = true
		default:
			return nil, fmt.Errorf("bad gate bit %q", p)
		}
	}
	return out, nil
}

func splitFloats(s string) ([]float64, error) {
	if s == "-" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := parseFinite(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// parseFinite parses a float and rejects NaN and ±Inf: trace records are
// physical quantities, and a non-finite value is always an upstream bug.
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}
