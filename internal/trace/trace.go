// Package trace is the synthetic stand-in for the paper's gem5 + McPAT
// characterization runs. The paper's tool flow (Figure 1) simulates each
// PARSEC application at 22 nm, producing performance and power traces that
// are then reduced to the Equation (1) power model. We have no gem5 or
// McPAT, so this package *generates* traces from the catalog's ground-truth
// models, perturbed with deterministic, reproducible measurement noise, and
// the rest of the pipeline fits Equation (1) back from them — exercising
// the same fit-then-scale code path as the paper without the external
// simulators.
//
// Determinism matters: the same (application, seed) always produces the
// same trace, so experiments and tests are reproducible.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"darksim/internal/apps"
	"darksim/internal/power"
	"darksim/internal/tech"
	"darksim/internal/vf"
)

// Row is one record of a synthetic gem5/McPAT run: the application ran at
// one operating point and the "simulator" reported power and throughput.
type Row struct {
	FGHz   float64
	Vdd    float64
	TempC  float64
	PowerW float64 // McPAT-style total core power
	GIPS   float64 // gem5-style throughput for a single thread
}

// Options configures trace generation.
type Options struct {
	// MinGHz, MaxGHz, StepGHz define the frequency sweep.
	// Defaults: 0.4 to 4.0 in 0.2 steps.
	MinGHz, MaxGHz, StepGHz float64
	// TempC is the die temperature the samples are taken at (default 60).
	TempC float64
	// NoiseFrac is the relative 1-sigma measurement noise (default 0.02).
	NoiseFrac float64
	// Seed selects the deterministic noise stream.
	Seed int64
}

func (o *Options) fillDefaults() {
	if o.MinGHz == 0 {
		o.MinGHz = 0.4
	}
	if o.MaxGHz == 0 {
		o.MaxGHz = 4.0
	}
	if o.StepGHz == 0 {
		o.StepGHz = 0.2
	}
	if o.TempC == 0 {
		o.TempC = 60
	}
	if o.NoiseFrac == 0 {
		o.NoiseFrac = 0.02
	}
}

// ErrOptions is returned for inconsistent sweep options.
var ErrOptions = errors.New("trace: invalid options")

// Generate produces the single-thread 22 nm trace for an application,
// mirroring the measurements behind the paper's Figure 3.
func Generate(app apps.App, opt Options) ([]Row, error) {
	opt.fillDefaults()
	if opt.MinGHz <= 0 || opt.MaxGHz < opt.MinGHz || opt.StepGHz <= 0 {
		return nil, fmt.Errorf("%w: sweep [%g, %g] step %g", ErrOptions, opt.MinGHz, opt.MaxGHz, opt.StepGHz)
	}
	if opt.NoiseFrac < 0 || opt.NoiseFrac > 0.5 {
		return nil, fmt.Errorf("%w: noise fraction %g", ErrOptions, opt.NoiseFrac)
	}
	curve, err := vf.CurveFor(tech.Node22)
	if err != nil {
		return nil, err
	}
	model := app.Model22()
	rng := rand.New(rand.NewSource(opt.Seed ^ int64(len(app.Name))<<32))
	var rows []Row
	for f := opt.MinGHz; f <= opt.MaxGHz+1e-9; f += opt.StepGHz {
		vdd, err := curve.VoltageFor(f)
		if err != nil {
			return nil, err
		}
		truth := model.Power(app.AlphaSingle, vdd, f, opt.TempC)
		noisy := truth * (1 + opt.NoiseFrac*rng.NormFloat64())
		if noisy < 0 {
			noisy = 0
		}
		rows = append(rows, Row{
			FGHz:   f,
			Vdd:    vdd,
			TempC:  opt.TempC,
			PowerW: noisy,
			GIPS:   app.IPC * f,
		})
	}
	return rows, nil
}

// FitModel reduces a trace back to an Equation (1) model, exactly as the
// paper's flow fits its simulation results (Figure 3). The application's
// single-thread activity factor and the baseline leakage model are assumed
// known from the characterization setup.
func FitModel(rows []Row, alphaSingle float64) (power.CoreModel, error) {
	samples := make([]power.Sample, len(rows))
	for i, r := range rows {
		samples[i] = power.Sample{FGHz: r.FGHz, Vdd: r.Vdd, TempC: r.TempC, PowerW: r.PowerW}
	}
	return power.Fit(samples, power.DefaultLeakage22(), alphaSingle)
}

// Write emits the trace as a tab-separated table with a header line,
// the on-disk interchange format of the tool flow.
func Write(w io.Writer, rows []Row) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# f_ghz\tvdd_v\ttemp_c\tpower_w\tgips")
	for _, r := range rows {
		fmt.Fprintf(bw, "%.3f\t%.4f\t%.2f\t%.4f\t%.3f\n", r.FGHz, r.Vdd, r.TempC, r.PowerW, r.GIPS)
	}
	return bw.Flush()
}

// Read parses a trace written by Write.
func Read(r io.Reader) ([]Row, error) {
	sc := bufio.NewScanner(r)
	var rows []Row
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", line, len(fields))
		}
		var vals [5]float64
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			vals[i] = v
		}
		rows = append(rows, Row{FGHz: vals[0], Vdd: vals[1], TempC: vals[2], PowerW: vals[3], GIPS: vals[4]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if len(rows) == 0 {
		return nil, errors.New("trace: empty input")
	}
	return rows, nil
}
