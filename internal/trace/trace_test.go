package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"darksim/internal/apps"
)

func TestGenerateDeterministic(t *testing.T) {
	x, err := apps.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Generate(x, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(x, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Different seeds differ.
	c, err := Generate(x, Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].PowerW != c[i].PowerW {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds should produce different noise")
	}
}

func TestGenerateShape(t *testing.T) {
	x, err := apps.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Generate(x, Options{Seed: 1, NoiseFrac: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	// 0.4..4.0 in 0.2 steps = 19 rows.
	if len(rows) != 19 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Power and GIPS are monotone in frequency (noise is negligible).
	for i := 1; i < len(rows); i++ {
		if rows[i].PowerW <= rows[i-1].PowerW {
			t.Fatalf("power not monotone at %d", i)
		}
		if rows[i].GIPS <= rows[i-1].GIPS {
			t.Fatalf("gips not monotone at %d", i)
		}
		if rows[i].Vdd <= rows[i-1].Vdd {
			t.Fatalf("vdd not monotone at %d", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	x, _ := apps.ByName("x264")
	if _, err := Generate(x, Options{MinGHz: -1}); err == nil {
		t.Errorf("negative MinGHz should error")
	}
	if _, err := Generate(x, Options{MinGHz: 3, MaxGHz: 1}); err == nil {
		t.Errorf("inverted sweep should error")
	}
	if _, err := Generate(x, Options{NoiseFrac: 0.9}); err == nil {
		t.Errorf("absurd noise should error")
	}
}

func TestFitModelRoundTrip(t *testing.T) {
	// The fit-from-trace must recover the catalog's ground truth to a few
	// per cent — this is the paper's "model fits the simulation" claim
	// (Figure 3) in test form.
	for _, name := range apps.Names() {
		a, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Generate(a, Options{Seed: 7, NoiseFrac: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		fit, err := FitModel(rows, a.AlphaSingle)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		truth := a.Model22()
		if rel := math.Abs(fit.CeffNF-truth.CeffNF) / truth.CeffNF; rel > 0.05 {
			t.Errorf("%s: fitted Ceff %.3f vs truth %.3f (%.1f%% off)",
				name, fit.CeffNF, truth.CeffNF, rel*100)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	x, _ := apps.ByName("swaptions")
	rows, err := Generate(x, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("rows = %d, want %d", len(got), len(rows))
	}
	for i := range rows {
		if math.Abs(got[i].PowerW-rows[i].PowerW) > 1e-3 {
			t.Fatalf("row %d power drifted: %v vs %v", i, got[i].PowerW, rows[i].PowerW)
		}
		if math.Abs(got[i].FGHz-rows[i].FGHz) > 1e-3 {
			t.Fatalf("row %d freq drifted", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Errorf("empty input should error")
	}
	if _, err := Read(strings.NewReader("1 2 3\n")); err == nil {
		t.Errorf("short row should error")
	}
	if _, err := Read(strings.NewReader("a b c d e\n")); err == nil {
		t.Errorf("non-numeric row should error")
	}
	if _, err := Read(strings.NewReader("# only comments\n")); err == nil {
		t.Errorf("comment-only input should error")
	}
}
